#include "analysis/prediction.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace titan::analysis {

namespace {

/// Score alarms against target occurrence times (shared by the span and
/// frame evaluate paths).
[[nodiscard]] FailurePredictor::Evaluation score_alarms(
    const std::vector<FailurePredictor::Alarm>& alarms,
    std::span<const stats::TimeSec> target_times, stats::TimeSec horizon) {
  FailurePredictor::Evaluation eval;
  eval.alarms = alarms.size();
  eval.targets = target_times.size();

  // True positive: a target occurs in (alarm, alarm + horizon).
  for (const auto& alarm : alarms) {
    const auto it =
        std::upper_bound(target_times.begin(), target_times.end(), alarm.time);
    if (it != target_times.end() && *it - alarm.time < horizon) ++eval.true_positives;
  }
  // Coverage: a target is covered when some alarm precedes it in-horizon.
  std::vector<stats::TimeSec> alarm_times;
  alarm_times.reserve(alarms.size());
  for (const auto& alarm : alarms) alarm_times.push_back(alarm.time);
  for (const auto t : target_times) {
    const auto it = std::lower_bound(alarm_times.begin(), alarm_times.end(), t);
    if (it != alarm_times.begin() && t - *std::prev(it) < horizon) ++eval.targets_covered;
  }
  return eval;
}

}  // namespace

FailurePredictor FailurePredictor::fit(std::span<const parse::ParsedEvent> training,
                                       xid::ErrorKind target, double horizon_s,
                                       std::uint64_t min_support, bool allow_self) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return fit(EventFrame::build(training), target, horizon_s, min_support, allow_self);
}

FailurePredictor FailurePredictor::fit(const EventFrame& training, xid::ErrorKind target,
                                       double horizon_s, std::uint64_t min_support,
                                       bool allow_self) {
  FailurePredictor predictor;
  predictor.target_ = target;
  predictor.horizon_s_ = horizon_s;

  const auto horizon = static_cast<stats::TimeSec>(std::llround(horizon_s));
  std::array<std::uint64_t, xid::kErrorKindCount> occurrences{};
  std::array<std::uint64_t, xid::kErrorKindCount> followed{};
  const auto times = training.times();
  const auto kinds = training.kinds();
  const auto target_rows = training.rows_of(target);
  const auto target_times = training.times_of(target);

  // "Is this event followed by the target within the horizon?" is a
  // binary search into the target's CSR slice (first target row after the
  // event's stream position), not a forward window scan.
  for (std::size_t i = 0; i < training.size(); ++i) {
    ++occurrences[static_cast<std::size_t>(kinds[i])];
    const auto next = std::upper_bound(target_rows.begin(), target_rows.end(),
                                       static_cast<std::uint32_t>(i));
    if (next == target_rows.end()) continue;
    const auto next_time = target_times[static_cast<std::size_t>(next - target_rows.begin())];
    if (next_time - times[i] < horizon) {
      ++followed[static_cast<std::size_t>(kinds[i])];
    }
  }
  for (std::size_t k = 0; k < xid::kErrorKindCount; ++k) {
    if (occurrences[k] < min_support) continue;
    const auto kind = static_cast<xid::ErrorKind>(k);
    if (!allow_self && kind == target) continue;
    if (followed[k] == 0) continue;
    PrecursorRule rule;
    rule.precursor = kind;
    rule.target = target;
    rule.probability = static_cast<double>(followed[k]) / static_cast<double>(occurrences[k]);
    rule.support = occurrences[k];
    predictor.rules_.push_back(rule);
  }
  std::stable_sort(predictor.rules_.begin(), predictor.rules_.end(),
                   [](const PrecursorRule& a, const PrecursorRule& b) {
                     return a.probability > b.probability;
                   });
  return predictor;
}

std::vector<FailurePredictor::Alarm> FailurePredictor::predict(
    std::span<const parse::ParsedEvent> stream, double threshold) const {
  return predict(EventFrame::build(stream), threshold);
}

std::vector<FailurePredictor::Alarm> FailurePredictor::predict(const EventFrame& stream,
                                                               double threshold) const {
  std::array<double, xid::kErrorKindCount> active;
  active.fill(-1.0);
  for (const auto& rule : rules_) {
    if (rule.probability >= threshold) {
      active[static_cast<std::size_t>(rule.precursor)] = rule.probability;
    }
  }
  const auto times = stream.times();
  const auto kinds = stream.kinds();
  std::vector<Alarm> alarms;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const double probability = active[static_cast<std::size_t>(kinds[i])];
    if (probability < 0.0) continue;
    alarms.push_back(Alarm{times[i], kinds[i], probability});
  }
  return alarms;
}

FailurePredictor::Evaluation FailurePredictor::evaluate(
    std::span<const parse::ParsedEvent> stream, double threshold) const {
  return evaluate(EventFrame::build(stream), threshold);
}

FailurePredictor::Evaluation FailurePredictor::evaluate(const EventFrame& stream,
                                                        double threshold) const {
  const auto alarms = predict(stream, threshold);
  const auto horizon = static_cast<stats::TimeSec>(std::llround(horizon_s_));
  return score_alarms(alarms, stream.times_of(target_), horizon);
}

}  // namespace titan::analysis
