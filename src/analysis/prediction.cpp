#include "analysis/prediction.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace titan::analysis {

FailurePredictor FailurePredictor::fit(std::span<const parse::ParsedEvent> training,
                                       xid::ErrorKind target, double horizon_s,
                                       std::uint64_t min_support, bool allow_self) {
  FailurePredictor predictor;
  predictor.target_ = target;
  predictor.horizon_s_ = horizon_s;

  const auto horizon = static_cast<stats::TimeSec>(std::llround(horizon_s));
  std::unordered_map<int, std::uint64_t> occurrences;
  std::unordered_map<int, std::uint64_t> followed;

  for (std::size_t i = 0; i < training.size(); ++i) {
    const int precursor = static_cast<int>(training[i].kind);
    ++occurrences[precursor];
    for (std::size_t j = i + 1; j < training.size(); ++j) {
      if (training[j].time - training[i].time >= horizon) break;
      if (training[j].kind == target) {
        ++followed[precursor];
        break;
      }
    }
  }
  for (const auto& [kind, count] : occurrences) {
    if (count < min_support) continue;
    const auto k = static_cast<xid::ErrorKind>(kind);
    if (!allow_self && k == target) continue;
    const auto hits = followed.contains(kind) ? followed.at(kind) : 0;
    if (hits == 0) continue;
    PrecursorRule rule;
    rule.precursor = k;
    rule.target = target;
    rule.probability = static_cast<double>(hits) / static_cast<double>(count);
    rule.support = count;
    predictor.rules_.push_back(rule);
  }
  std::sort(predictor.rules_.begin(), predictor.rules_.end(),
            [](const PrecursorRule& a, const PrecursorRule& b) {
              return a.probability > b.probability;
            });
  return predictor;
}

std::vector<FailurePredictor::Alarm> FailurePredictor::predict(
    std::span<const parse::ParsedEvent> stream, double threshold) const {
  std::unordered_map<int, double> active;  // precursor kind -> probability
  for (const auto& rule : rules_) {
    if (rule.probability >= threshold) {
      active.emplace(static_cast<int>(rule.precursor), rule.probability);
    }
  }
  std::vector<Alarm> alarms;
  for (const auto& e : stream) {
    const auto it = active.find(static_cast<int>(e.kind));
    if (it == active.end()) continue;
    alarms.push_back(Alarm{e.time, e.kind, it->second});
  }
  return alarms;
}

FailurePredictor::Evaluation FailurePredictor::evaluate(
    std::span<const parse::ParsedEvent> stream, double threshold) const {
  const auto alarms = predict(stream, threshold);
  const auto horizon = static_cast<stats::TimeSec>(std::llround(horizon_s_));

  std::vector<stats::TimeSec> target_times;
  for (const auto& e : stream) {
    if (e.kind == target_) target_times.push_back(e.time);
  }

  Evaluation eval;
  eval.alarms = alarms.size();
  eval.targets = target_times.size();

  // True positive: a target occurs in (alarm, alarm + horizon).
  for (const auto& alarm : alarms) {
    const auto it =
        std::upper_bound(target_times.begin(), target_times.end(), alarm.time);
    if (it != target_times.end() && *it - alarm.time < horizon) ++eval.true_positives;
  }
  // Coverage: a target is covered when some alarm precedes it in-horizon.
  std::vector<stats::TimeSec> alarm_times;
  alarm_times.reserve(alarms.size());
  for (const auto& alarm : alarms) alarm_times.push_back(alarm.time);
  for (const auto t : target_times) {
    const auto it = std::lower_bound(alarm_times.begin(), alarm_times.end(), t);
    if (it != alarm_times.begin() && t - *std::prev(it) < horizon) ++eval.targets_covered;
  }
  return eval;
}

}  // namespace titan::analysis
