#include "analysis/reliability_report.hpp"

namespace titan::analysis {

namespace {

/// Fold the snapshot-side counters (shared by the span and frame paths).
void add_snapshot_counters(SmiConsoleComparison& out, const logsim::SmiSnapshot& snapshot) {
  out.smi_dbe_count = snapshot.fleet_dbe_total();
  for (const auto& r : snapshot.records) {
    if (r.dbe_total == 0) continue;
    ++out.cards_with_dbe;
    if (r.dbe_total > r.sbe_total) ++out.cards_dbe_exceeds_sbe;
  }
}

[[nodiscard]] MtbfReport make_mtbf_report(stats::MtbfEstimate measured,
                                          double datasheet_fleet_dbe_per_hour) {
  MtbfReport out;
  out.measured = measured;
  out.datasheet_mtbf_hours =
      datasheet_fleet_dbe_per_hour > 0.0 ? 1.0 / datasheet_fleet_dbe_per_hour : 0.0;
  out.improvement_factor = out.datasheet_mtbf_hours > 0.0
                               ? out.measured.mtbf_hours / out.datasheet_mtbf_hours
                               : 0.0;
  return out;
}

}  // namespace

SmiConsoleComparison smi_console_comparison(std::span<const parse::ParsedEvent> events,
                                            const logsim::SmiSnapshot& snapshot) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return smi_console_comparison(EventFrame::build(events), snapshot);
}

SmiConsoleComparison smi_console_comparison(const EventFrame& frame,
                                            const logsim::SmiSnapshot& snapshot) {
  SmiConsoleComparison out;
  out.console_dbe_count = frame.count_of(xid::ErrorKind::kDoubleBitError);
  add_snapshot_counters(out, snapshot);
  return out;
}

MtbfReport mtbf_report(std::span<const parse::ParsedEvent> events, stats::TimeSec begin,
                       stats::TimeSec end, double datasheet_fleet_dbe_per_hour) {
  return mtbf_report(EventFrame::build(events), begin, end, datasheet_fleet_dbe_per_hour);
}

MtbfReport mtbf_report(const EventFrame& frame, stats::TimeSec begin, stats::TimeSec end,
                       double datasheet_fleet_dbe_per_hour) {
  const auto times = frame.times_of(xid::ErrorKind::kDoubleBitError);
  return make_mtbf_report(stats::estimate_mtbf({times.begin(), times.end()}, begin, end),
                          datasheet_fleet_dbe_per_hour);
}

}  // namespace titan::analysis
