#include "analysis/reliability_report.hpp"

namespace titan::analysis {

SmiConsoleComparison smi_console_comparison(std::span<const parse::ParsedEvent> events,
                                            const logsim::SmiSnapshot& snapshot) {
  SmiConsoleComparison out;
  for (const auto& e : events) {
    if (e.kind == xid::ErrorKind::kDoubleBitError) ++out.console_dbe_count;
  }
  out.smi_dbe_count = snapshot.fleet_dbe_total();
  for (const auto& r : snapshot.records) {
    if (r.dbe_total == 0) continue;
    ++out.cards_with_dbe;
    if (r.dbe_total > r.sbe_total) ++out.cards_dbe_exceeds_sbe;
  }
  return out;
}

MtbfReport mtbf_report(std::span<const parse::ParsedEvent> events, stats::TimeSec begin,
                       stats::TimeSec end, double datasheet_fleet_dbe_per_hour) {
  MtbfReport out;
  out.measured = stats::estimate_mtbf(times_of_kind(events, xid::ErrorKind::kDoubleBitError),
                                      begin, end);
  out.datasheet_mtbf_hours =
      datasheet_fleet_dbe_per_hour > 0.0 ? 1.0 / datasheet_fleet_dbe_per_hour : 0.0;
  out.improvement_factor = out.datasheet_mtbf_hours > 0.0
                               ? out.measured.mtbf_hours / out.datasheet_mtbf_hours
                               : 0.0;
  return out;
}

}  // namespace titan::analysis
