#include "analysis/spatial.hpp"

#include <limits>
#include <numeric>
#include <unordered_set>

namespace titan::analysis {

stats::Grid2D cabinet_heatmap(std::span<const parse::ParsedEvent> events, xid::ErrorKind kind) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return cabinet_heatmap(EventFrame::build(events), kind);
}

stats::Grid2D cabinet_heatmap(const EventFrame& frame, xid::ErrorKind kind) {
  stats::Grid2D grid{static_cast<std::size_t>(topology::kCabinetGridY),
                     static_cast<std::size_t>(topology::kCabinetGridX)};
  const auto locations = frame.locations();
  for (const auto row : frame.rows_of(kind)) {
    const auto& loc = locations[row];
    grid.add(static_cast<std::size_t>(loc.cab_y), static_cast<std::size_t>(loc.cab_x));
  }
  return grid;
}

std::uint64_t CageDistribution::total_events() const noexcept {
  return std::accumulate(event_counts.begin(), event_counts.end(), std::uint64_t{0});
}

double CageDistribution::top_to_bottom_ratio() const noexcept {
  const auto bottom = event_counts.front();
  const auto top = event_counts.back();
  if (bottom == 0) return top > 0 ? std::numeric_limits<double>::infinity() : 1.0;
  return static_cast<double>(top) / static_cast<double>(bottom);
}

CageDistribution cage_distribution(std::span<const parse::ParsedEvent> events,
                                   xid::ErrorKind kind, const gpu::FleetLedger& ledger) {
  // Forwarding adapter: the card join happens once, at frame build.
  return cage_distribution(EventFrame::build(events, &ledger), kind);
}

CageDistribution cage_distribution(const EventFrame& frame, xid::ErrorKind kind) {
  CageDistribution out;
  std::array<std::unordered_set<xid::CardId>, topology::kCagesPerCabinet> cards;
  const auto locations = frame.locations();
  const auto joined = frame.cards();
  for (const auto row : frame.rows_of(kind)) {
    const auto cage = static_cast<std::size_t>(locations[row].cage);
    ++out.event_counts[cage];
    const xid::CardId card = joined[row];
    if (card != xid::kInvalidCard) cards[cage].insert(card);
  }
  for (std::size_t c = 0; c < cards.size(); ++c) {
    out.distinct_cards[c] = cards[c].size();
  }
  return out;
}

std::uint64_t StructureBreakdown::total() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

double StructureBreakdown::share(xid::MemoryStructure s) const noexcept {
  const auto t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(s)]) / static_cast<double>(t);
}

StructureBreakdown structure_breakdown(std::span<const parse::ParsedEvent> events,
                                       xid::ErrorKind kind) {
  return structure_breakdown(EventFrame::build(events), kind);
}

StructureBreakdown structure_breakdown(const EventFrame& frame, xid::ErrorKind kind) {
  StructureBreakdown out;
  const auto structures = frame.structures();
  for (const auto row : frame.rows_of(kind)) {
    ++out.counts[static_cast<std::size_t>(structures[row])];
  }
  return out;
}

}  // namespace titan::analysis
