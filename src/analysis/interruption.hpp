// Application-interruption analysis: the paper's framing question --
// "we look at the GPU system failures specifically to see how they
// impact the applications (e.g., execution interruption)".
//
// Joins app-fatal error events against the job trace to measure which
// jobs were interrupted, the node-hours they had accumulated at the
// moment of interruption, and how interruption probability scales with
// job size (the exposure argument behind checkpointing policy).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/event_frame.hpp"
#include "sched/job.hpp"
#include "xid/event.hpp"

namespace titan::analysis {

/// Size classes used for the per-scale breakdown.
inline constexpr std::array<std::size_t, 4> kSizeClassLowerBounds = {1, 64, 512, 4096};

struct SizeClassStats {
  std::size_t jobs = 0;
  std::size_t interrupted = 0;
  double node_hours_lost = 0.0;  ///< accumulated node-hours at interruption

  [[nodiscard]] double interruption_rate() const noexcept {
    return jobs > 0 ? static_cast<double>(interrupted) / static_cast<double>(jobs) : 0.0;
  }
};

struct InterruptionStudy {
  std::size_t total_jobs = 0;
  std::size_t interrupted_jobs = 0;
  double total_node_hours = 0.0;
  double node_hours_lost = 0.0;        ///< without checkpointing, upper bound
  std::array<SizeClassStats, 4> by_size{};
  /// Mean time to interrupt for a hypothetical full-machine application
  /// (hours): the window length divided by the number of app-fatal events.
  double full_machine_mtti_hours = 0.0;

  [[nodiscard]] double interruption_rate() const noexcept {
    return total_jobs > 0
               ? static_cast<double>(interrupted_jobs) / static_cast<double>(total_jobs)
               : 0.0;
  }
};

/// An event interrupts a job when it is app-fatal (crashes_app) and lands
/// on one of the job's nodes during its execution.  Only the job's FIRST
/// interruption counts (the paper's model: the app dies, the allocation
/// drains).
[[nodiscard]] InterruptionStudy interruption_study(std::span<const xid::Event> events,
                                                   const sched::JobTrace& trace,
                                                   stats::TimeSec begin, stats::TimeSec end);
/// Frame kernel: reads the time/kind/job/root columns (the frame must
/// have been built from ground truth, which carries job attribution) with
/// a precomputed app-fatal lookup table.
[[nodiscard]] InterruptionStudy interruption_study(const EventFrame& frame,
                                                   const sched::JobTrace& trace,
                                                   stats::TimeSec begin, stats::TimeSec end);

}  // namespace titan::analysis
