#include "analysis/retirement_study.hpp"

#include <algorithm>

namespace titan::analysis {

RetirementDelayStudy retirement_delay_study(std::span<const parse::ParsedEvent> events,
                                            stats::TimeSec accounting_from) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return retirement_delay_study(EventFrame::build(events), accounting_from);
}

RetirementDelayStudy retirement_delay_study(const EventFrame& frame,
                                            stats::TimeSec accounting_from) {
  return retirement_delay_study(frame, accounting_from, xid::ErrorKind::kDoubleBitError,
                                xid::ErrorKind::kPageRetirement);
}

RetirementDelayStudy retirement_delay_study(const EventFrame& frame,
                                            stats::TimeSec accounting_from,
                                            xid::ErrorKind trigger_kind,
                                            xid::ErrorKind repair_kind) {
  RetirementDelayStudy out;
  const auto dbe_rows = frame.rows_of(trigger_kind);
  const auto ret_rows = frame.rows_of(repair_kind);
  const auto dbe_times = frame.times_of(trigger_kind);
  const auto ret_times = frame.times_of(repair_kind);

  bool have_dbe = false;
  stats::TimeSec last_dbe = 0;
  bool retirement_since_dbe = false;

  // Two-pointer merge over the two CSR slices; comparing row ids
  // reproduces the stream order a whole-stream walk would see.
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < dbe_rows.size() || b < ret_rows.size()) {
    const bool take_dbe =
        b >= ret_rows.size() || (a < dbe_rows.size() && dbe_rows[a] < ret_rows[b]);
    if (take_dbe) {
      const stats::TimeSec t = dbe_times[a++];
      if (t < accounting_from) continue;
      if (have_dbe && !retirement_since_dbe) ++out.dbe_pairs_without_retirement;
      have_dbe = true;
      last_dbe = t;
      retirement_since_dbe = false;
      continue;
    }
    const stats::TimeSec t = ret_times[b++];
    if (t < accounting_from) continue;
    retirement_since_dbe = true;
    if (!have_dbe) {
      ++out.before_any_dbe;
      continue;
    }
    const double delay = static_cast<double>(t - last_dbe);
    out.delays_s.push_back(delay);
    if (delay <= 600.0) {
      ++out.within_10min;
    } else if (delay <= 6.0 * 3600.0) {
      ++out.min10_to_6h;
    } else {
      ++out.beyond_6h;
    }
  }
  return out;
}

}  // namespace titan::analysis
