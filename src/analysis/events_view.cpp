#include "analysis/events_view.hpp"

namespace titan::analysis {

std::vector<parse::ParsedEvent> as_parsed(std::span<const xid::Event> events) {
  std::vector<parse::ParsedEvent> out;
  out.reserve(events.size());
  for (const auto& e : events) {
    if (e.kind == xid::ErrorKind::kSingleBitError) continue;
    out.push_back(parse::ParsedEvent{e.time, e.node, e.kind, e.structure});
  }
  return out;
}

std::vector<parse::ParsedEvent> of_kind(std::span<const parse::ParsedEvent> events,
                                        xid::ErrorKind kind) {
  std::vector<parse::ParsedEvent> out;
  for (const auto& e : events) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<stats::TimeSec> times_of_kind(std::span<const parse::ParsedEvent> events,
                                          xid::ErrorKind kind) {
  std::vector<stats::TimeSec> out;
  for (const auto& e : events) {
    if (e.kind == kind) out.push_back(e.time);
  }
  return out;
}

}  // namespace titan::analysis
