// GPU workload characterization (Fig. 21, Observation 14).
//
// Four panels: jobs sorted by GPU core hours against memory (a) and node
// count (b); jobs sorted by node count against wall-clock time (c) and
// max memory (d).  Plus the headline shape indicators the observation
// states in prose.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/job.hpp"
#include "stats/correlation.hpp"

namespace titan::analysis {

/// Per-bin means of a target metric with jobs sorted by a key metric,
/// both normalized to their own means (the paper's presentation).
struct Profile {
  std::vector<double> key_mean;
  std::vector<double> target_mean;
};

/// Job-level metric extractor selectors for profiles.
enum class JobField : std::uint8_t {
  kGpuCoreHours,
  kNodeCount,
  kWallHours,
  kMaxMemory,
  kTotalMemory,
};

[[nodiscard]] double field_value(const sched::JobRecord& job, JobField field) noexcept;

[[nodiscard]] Profile job_profile(const sched::JobTrace& trace, JobField sort_key,
                                  JobField target, std::size_t bins);

struct WorkloadShape {
  /// Fig. 21(b): core hours and node count move together.
  stats::Correlation corehours_vs_nodes;
  /// Obs. 14: mean node-count percentile of the top-1% max-memory jobs
  /// (low/medium => memory hogs run at modest scale).
  double top_memory_jobs_node_percentile = 0.0;
  /// Obs. 14: mean core-hour percentile of the top-1% total-memory jobs.
  double top_memory_jobs_corehour_percentile = 0.0;
  /// Fig. 21(c): max wall-hours among small jobs (bottom node-count
  /// quartile) vs among large jobs (top quartile); > 1 shows some small
  /// jobs out-run the big ones.
  double small_vs_large_max_wall_ratio = 0.0;
};

[[nodiscard]] WorkloadShape workload_shape(const sched::JobTrace& trace);

}  // namespace titan::analysis
