// Every quantitative claim the paper makes, as named constants.  The
// bench harness prints each next to the measured value and EXPERIMENTS.md
// records the comparison; tests assert the *shape* criteria (who wins,
// rough factors, crossovers), never exact counts.
#pragma once

namespace titan::analysis::paper {

// Observation 1 / Fig. 2.
inline constexpr double kDbeMtbfHours = 160.0;          // "approx. one DBE per week"
inline constexpr double kDbeMtbfToleranceFactor = 1.5;  // shape acceptance band

// Fig. 3(c) / Observation 3.
inline constexpr double kDbeDeviceMemoryShare = 0.86;
inline constexpr double kDbeRegisterFileShare = 0.14;

// Fig. 3(b) / Fig. 5: upper cages see more DBEs/OTBs than lower cages.
inline constexpr double kCageRatioAtLeast = 1.15;  // top/bottom, qualitative

// Fig. 4: OTB collapses after the Dec'2013 soldering rework.
inline constexpr double kOtbPostFixShareAtMost = 0.25;

// Fig. 6: retirement XIDs only exist from Jan'2014.
// Fig. 8: 18 retirements within 10 min of a DBE, 1 in (10 min, 6 h],
// 18 beyond; 17 successive-DBE pairs without a retirement between.
inline constexpr int kRetirementsWithin10Min = 18;
inline constexpr int kRetirements10MinTo6h = 1;
inline constexpr int kRetirementsBeyond6h = 18;
inline constexpr int kDbePairsWithoutRetirement = 17;

// Fig. 9: XIDs 32 and 38 occurred fewer than ten times; XID 42 never.
inline constexpr int kXid32AtMost = 10;
inline constexpr int kXid38AtMost = 10;
inline constexpr int kXid42Exactly = 0;

// Observation 6: user-application XIDs are bursty; driver XIDs are not.
// (Index of dispersion of daily counts; Poisson == 1.)
inline constexpr double kBurstyDispersionAtLeast = 3.0;
inline constexpr double kNonBurstyDispersionAtMost = 2.0;

// Observation 7: job-wide propagation within five seconds.
inline constexpr double kPropagationWindowS = 5.0;

// Observation 10 / Figs. 14-15.
inline constexpr double kSbeCardFractionAtMost = 0.05;  // "< 5% of the system"
// Removing top-50 offenders must homogenize the spatial distribution
// (coefficient of variation drops by at least this factor).
inline constexpr double kSkewDropFactorAtLeast = 2.0;

// Section 4 correlations.
inline constexpr double kMemorySpearmanBelow = 0.50;        // Figs. 16-17
inline constexpr double kNodesSpearman = 0.57;              // Fig. 18
inline constexpr double kCoreHoursSpearman = 0.70;          // Fig. 19
inline constexpr double kUserSpearman = 0.80;               // Fig. 20
inline constexpr double kExclTop10SpearmanBelow = 0.50;     // Figs. 18-19 excl.

}  // namespace titan::analysis::paper
