#include "analysis/frequency.hpp"

#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace titan::analysis {

stats::MonthlySeries monthly_frequency(std::span<const parse::ParsedEvent> events,
                                       xid::ErrorKind kind, stats::TimeSec begin,
                                       stats::TimeSec end) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return monthly_frequency(EventFrame::build(events), kind, begin, end);
}

stats::MonthlySeries monthly_frequency(const EventFrame& frame, xid::ErrorKind kind,
                                       stats::TimeSec begin, stats::TimeSec end) {
  if (end <= begin) throw std::invalid_argument{"monthly_counts: empty window"};
  stats::MonthlySeries out;
  out.origin = begin;
  const int n_months = stats::month_index(end - 1, begin) + 1;
  out.counts.assign(static_cast<std::size_t>(n_months), 0);
  // Bucket = precomputed absolute month ordinal minus the window origin's:
  // exactly stats::month_index(t, begin), without the per-event civil-date
  // decode stats::monthly_counts pays.
  const int origin_ord = stats::month_ordinal(stats::to_civil(begin).date);
  const auto rows = frame.rows_of(kind);
  const auto times = frame.times_of(kind);
  const auto months = frame.month_ordinals();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (times[i] < begin || times[i] >= end) continue;
    out.counts[static_cast<std::size_t>(months[rows[i]] - origin_ord)] += 1;
  }
  return out;
}

stats::MtbfEstimate kind_mtbf(std::span<const parse::ParsedEvent> events, xid::ErrorKind kind,
                              stats::TimeSec begin, stats::TimeSec end) {
  return kind_mtbf(EventFrame::build(events), kind, begin, end);
}

stats::MtbfEstimate kind_mtbf(const EventFrame& frame, xid::ErrorKind kind, stats::TimeSec begin,
                              stats::TimeSec end) {
  const auto times = frame.times_of(kind);
  return stats::estimate_mtbf({times.begin(), times.end()}, begin, end);
}

double daily_dispersion_index(std::span<const parse::ParsedEvent> events, xid::ErrorKind kind,
                              stats::TimeSec begin, stats::TimeSec end) {
  return daily_dispersion_index(EventFrame::build(events), kind, begin, end);
}

double daily_dispersion_index(const EventFrame& frame, xid::ErrorKind kind, stats::TimeSec begin,
                              stats::TimeSec end) {
  if (end <= begin) return 0.0;
  const auto days = static_cast<std::size_t>((end - begin + stats::kSecondsPerDay - 1) /
                                             stats::kSecondsPerDay);
  std::vector<double> daily(days, 0.0);
  for (const auto t : frame.times_of(kind)) {
    if (t < begin || t >= end) continue;
    daily[static_cast<std::size_t>((t - begin) / stats::kSecondsPerDay)] += 1.0;
  }
  const double m = stats::mean(daily);
  if (m == 0.0) return 0.0;
  return stats::variance(daily) / m;
}

}  // namespace titan::analysis
