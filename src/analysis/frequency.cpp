#include "analysis/frequency.hpp"

#include <vector>

#include "stats/descriptive.hpp"

namespace titan::analysis {

stats::MonthlySeries monthly_frequency(std::span<const parse::ParsedEvent> events,
                                       xid::ErrorKind kind, stats::TimeSec begin,
                                       stats::TimeSec end) {
  return stats::monthly_counts(times_of_kind(events, kind), begin, end);
}

stats::MtbfEstimate kind_mtbf(std::span<const parse::ParsedEvent> events, xid::ErrorKind kind,
                              stats::TimeSec begin, stats::TimeSec end) {
  return stats::estimate_mtbf(times_of_kind(events, kind), begin, end);
}

double daily_dispersion_index(std::span<const parse::ParsedEvent> events, xid::ErrorKind kind,
                              stats::TimeSec begin, stats::TimeSec end) {
  if (end <= begin) return 0.0;
  const auto days = static_cast<std::size_t>((end - begin + stats::kSecondsPerDay - 1) /
                                             stats::kSecondsPerDay);
  std::vector<double> daily(days, 0.0);
  for (const auto& e : events) {
    if (e.kind != kind || e.time < begin || e.time >= end) continue;
    daily[static_cast<std::size_t>((e.time - begin) / stats::kSecondsPerDay)] += 1.0;
  }
  const double m = stats::mean(daily);
  if (m == 0.0) return 0.0;
  return stats::variance(daily) / m;
}

}  // namespace titan::analysis
