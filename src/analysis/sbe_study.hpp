// Single-bit-error spatial/offender analyses (Figs. 14-15, Observation 10).
//
// SBEs are invisible to the console log; these analyses read the
// end-of-study nvidia-smi sweep (aggregate per-card counters).  The
// paper's key move is re-running every view after removing the top 10 and
// top 50 offending cards, showing that the apparent spatial skew is a
// property of a few weak cards, not of location.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "logsim/smi.hpp"
#include "stats/histogram.hpp"
#include "topology/machine.hpp"

namespace titan::analysis {

/// The exclusion levels the paper sweeps.
inline constexpr std::array<std::size_t, 3> kOffenderExclusions = {0, 10, 50};

struct SbeSpatialStudy {
  /// One cabinet-grid of summed SBE counts per exclusion level (0/10/50).
  std::vector<stats::Grid2D> grids;
  /// Coefficient of variation of each grid (skew proxy: drops toward
  /// homogeneous as offenders are removed).
  std::array<double, 3> skew{};
  std::size_t cards_with_any_sbe = 0;
  double fraction_of_fleet = 0.0;   ///< paper: < 5%
  /// Serials of the top-50 offenders, most-offending first.
  std::vector<xid::CardId> top_offenders;
};

[[nodiscard]] SbeSpatialStudy sbe_spatial_study(const logsim::SmiSnapshot& snapshot);

struct SbeCageStudy {
  /// [exclusion level][cage] -> summed SBE counts.
  std::array<std::array<std::uint64_t, topology::kCagesPerCabinet>, 3> counts{};
  /// [exclusion level][cage] -> number of distinct cards with any SBE.
  std::array<std::array<std::uint64_t, topology::kCagesPerCabinet>, 3> distinct_cards{};
};

[[nodiscard]] SbeCageStudy sbe_cage_study(const logsim::SmiSnapshot& snapshot);

/// Top-k SBE offender card serials from a snapshot (most offending first).
[[nodiscard]] std::vector<xid::CardId> top_sbe_offenders(const logsim::SmiSnapshot& snapshot,
                                                         std::size_t k);

/// Per-structure SBE totals across the fleet, from the InfoROM counters
/// (Observation 11: "most of the single bit errors happen in the L2
/// cache").  Needs the fleet because snapshots carry only totals.
[[nodiscard]] std::array<std::uint64_t, xid::kMemoryStructureCount> fleet_sbe_by_structure(
    const gpu::Fleet& fleet);

}  // namespace titan::analysis
