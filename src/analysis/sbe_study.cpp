#include "analysis/sbe_study.hpp"

#include <algorithm>
#include <unordered_map>

namespace titan::analysis {

namespace {

/// Offender rank per card serial (position in the most-offending-first
/// list; absent cards rank past every exclusion level).  A record is
/// excluded at a level exactly when its rank is below that level's
/// threshold, so one rank lookup replaces a set probe per level.
[[nodiscard]] std::unordered_map<xid::CardId, std::size_t> offender_ranks(
    const std::vector<xid::CardId>& offenders) {
  std::unordered_map<xid::CardId, std::size_t> ranks;
  ranks.reserve(offenders.size());
  for (std::size_t i = 0; i < offenders.size(); ++i) ranks.emplace(offenders[i], i);
  return ranks;
}

[[nodiscard]] std::size_t rank_of(const std::unordered_map<xid::CardId, std::size_t>& ranks,
                                  xid::CardId serial) {
  const auto it = ranks.find(serial);
  return it == ranks.end() ? static_cast<std::size_t>(-1) : it->second;
}

}  // namespace

std::vector<xid::CardId> top_sbe_offenders(const logsim::SmiSnapshot& snapshot, std::size_t k) {
  std::vector<const logsim::SmiCardRecord*> records;
  records.reserve(snapshot.records.size());
  for (const auto& r : snapshot.records) records.push_back(&r);
  std::sort(records.begin(), records.end(), [](const auto* a, const auto* b) {
    if (a->sbe_total != b->sbe_total) return a->sbe_total > b->sbe_total;
    return a->serial < b->serial;
  });
  std::vector<xid::CardId> out;
  out.reserve(std::min(k, records.size()));
  for (std::size_t i = 0; i < records.size() && i < k; ++i) out.push_back(records[i]->serial);
  return out;
}

SbeSpatialStudy sbe_spatial_study(const logsim::SmiSnapshot& snapshot) {
  SbeSpatialStudy out;
  out.top_offenders = top_sbe_offenders(snapshot, 50);

  for (const auto& r : snapshot.records) {
    if (r.sbe_total > 0) ++out.cards_with_any_sbe;
  }
  out.fraction_of_fleet = snapshot.records.empty()
                              ? 0.0
                              : static_cast<double>(out.cards_with_any_sbe) /
                                    static_cast<double>(snapshot.records.size());

  // Single pass over the records: locate each node once and feed every
  // exclusion level's grid from the same decoded coordinates.
  const auto ranks = offender_ranks(out.top_offenders);
  for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
    out.grids.emplace_back(static_cast<std::size_t>(topology::kCabinetGridY),
                           static_cast<std::size_t>(topology::kCabinetGridX));
  }
  for (const auto& r : snapshot.records) {
    const auto rank = rank_of(ranks, r.serial);
    const auto loc = topology::locate(r.node);
    for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
      if (rank < kOffenderExclusions[level]) continue;
      out.grids[level].add(static_cast<std::size_t>(loc.cab_y),
                           static_cast<std::size_t>(loc.cab_x),
                           static_cast<double>(r.sbe_total));
    }
  }
  for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
    out.skew[level] = out.grids[level].coefficient_of_variation();
  }
  return out;
}

SbeCageStudy sbe_cage_study(const logsim::SmiSnapshot& snapshot) {
  SbeCageStudy out;
  const auto ranks = offender_ranks(top_sbe_offenders(snapshot, 50));
  for (const auto& r : snapshot.records) {
    if (r.sbe_total == 0) continue;
    const auto rank = rank_of(ranks, r.serial);
    const auto cage = static_cast<std::size_t>(topology::locate(r.node).cage);
    for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
      if (rank < kOffenderExclusions[level]) continue;
      out.counts[level][cage] += r.sbe_total;
      ++out.distinct_cards[level][cage];
    }
  }
  return out;
}

std::array<std::uint64_t, xid::kMemoryStructureCount> fleet_sbe_by_structure(
    const gpu::Fleet& fleet) {
  std::array<std::uint64_t, xid::kMemoryStructureCount> out{};
  for (std::size_t serial = 0; serial < fleet.card_count(); ++serial) {
    const auto& inforom = fleet.card(static_cast<xid::CardId>(serial)).inforom();
    for (std::size_t s = 0; s < xid::kMemoryStructureCount; ++s) {
      out[s] += inforom.sbe_count(static_cast<xid::MemoryStructure>(s));
    }
  }
  return out;
}

}  // namespace titan::analysis
