#include "analysis/sbe_study.hpp"

#include <algorithm>

namespace titan::analysis {

namespace {

[[nodiscard]] std::unordered_set<xid::CardId> exclusion_set(
    const std::vector<xid::CardId>& offenders, std::size_t k) {
  return {offenders.begin(),
          offenders.begin() + static_cast<std::ptrdiff_t>(std::min(k, offenders.size()))};
}

}  // namespace

std::vector<xid::CardId> top_sbe_offenders(const logsim::SmiSnapshot& snapshot, std::size_t k) {
  std::vector<const logsim::SmiCardRecord*> records;
  records.reserve(snapshot.records.size());
  for (const auto& r : snapshot.records) records.push_back(&r);
  std::sort(records.begin(), records.end(), [](const auto* a, const auto* b) {
    if (a->sbe_total != b->sbe_total) return a->sbe_total > b->sbe_total;
    return a->serial < b->serial;
  });
  std::vector<xid::CardId> out;
  out.reserve(std::min(k, records.size()));
  for (std::size_t i = 0; i < records.size() && i < k; ++i) out.push_back(records[i]->serial);
  return out;
}

SbeSpatialStudy sbe_spatial_study(const logsim::SmiSnapshot& snapshot) {
  SbeSpatialStudy out;
  out.top_offenders = top_sbe_offenders(snapshot, 50);

  for (const auto& r : snapshot.records) {
    if (r.sbe_total > 0) ++out.cards_with_any_sbe;
  }
  out.fraction_of_fleet = snapshot.records.empty()
                              ? 0.0
                              : static_cast<double>(out.cards_with_any_sbe) /
                                    static_cast<double>(snapshot.records.size());

  for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
    const auto excluded = exclusion_set(out.top_offenders, kOffenderExclusions[level]);
    stats::Grid2D grid{static_cast<std::size_t>(topology::kCabinetGridY),
                       static_cast<std::size_t>(topology::kCabinetGridX)};
    for (const auto& r : snapshot.records) {
      if (excluded.contains(r.serial)) continue;
      const auto loc = topology::locate(r.node);
      grid.add(static_cast<std::size_t>(loc.cab_y), static_cast<std::size_t>(loc.cab_x),
               static_cast<double>(r.sbe_total));
    }
    out.skew[level] = grid.coefficient_of_variation();
    out.grids.push_back(std::move(grid));
  }
  return out;
}

SbeCageStudy sbe_cage_study(const logsim::SmiSnapshot& snapshot) {
  SbeCageStudy out;
  const auto offenders = top_sbe_offenders(snapshot, 50);
  for (std::size_t level = 0; level < kOffenderExclusions.size(); ++level) {
    const auto excluded = exclusion_set(offenders, kOffenderExclusions[level]);
    for (const auto& r : snapshot.records) {
      if (excluded.contains(r.serial) || r.sbe_total == 0) continue;
      const auto cage = static_cast<std::size_t>(topology::locate(r.node).cage);
      out.counts[level][cage] += r.sbe_total;
      ++out.distinct_cards[level][cage];
    }
  }
  return out;
}

std::array<std::uint64_t, xid::kMemoryStructureCount> fleet_sbe_by_structure(
    const gpu::Fleet& fleet) {
  std::array<std::uint64_t, xid::kMemoryStructureCount> out{};
  for (std::size_t serial = 0; serial < fleet.card_count(); ++serial) {
    const auto& inforom = fleet.card(static_cast<xid::CardId>(serial)).inforom();
    for (std::size_t s = 0; s < xid::kMemoryStructureCount; ++s) {
      out[s] += inforom.sbe_count(static_cast<xid::MemoryStructure>(s));
    }
  }
  return out;
}

}  // namespace titan::analysis
