// Adapters between ground-truth events and the console-recoverable view.
//
// Analyses operate on parse::ParsedEvent (time/node/kind/structure): the
// fields a real console line yields.  Ground-truth xid::Event streams are
// downgraded through `as_parsed` before analysis, so every analysis result
// is achievable from logs alone -- richer joins (cards, jobs) go through
// the ledger and job trace explicitly, as the paper's did.
#pragma once

#include <span>
#include <vector>

#include "parse/console.hpp"
#include "xid/event.hpp"

namespace titan::analysis {

/// Downgrade ground truth to the console-recoverable view.  SBEs are
/// dropped (they never reach the console log).
[[nodiscard]] std::vector<parse::ParsedEvent> as_parsed(std::span<const xid::Event> events);

/// Events of one kind, preserving order.
[[nodiscard]] std::vector<parse::ParsedEvent> of_kind(std::span<const parse::ParsedEvent> events,
                                                      xid::ErrorKind kind);

/// Timestamps of events of one kind.
[[nodiscard]] std::vector<stats::TimeSec> times_of_kind(
    std::span<const parse::ParsedEvent> events, xid::ErrorKind kind);

}  // namespace titan::analysis
