// Precursor-based failure prediction.
//
// Observation 9 motivates it directly: "doing correlation analysis
// between different types of errors helps us understand which errors are
// more likely to be followed by another type of error" -- and the related
// work the paper cites ([11-13]) turns such co-occurrence statistics into
// failure predictors that trigger proactive action (checkpoint now,
// drain the node).  This module implements that loop:
//
//   1. fit:      learn P(target kind within horizon | precursor kind)
//                from a training slice of the event stream,
//   2. predict:  fire an alarm whenever a precursor with learned
//                probability >= threshold is seen,
//   3. evaluate: precision / recall / F1 of the alarms against the
//                evaluation slice.
#pragma once

#include <span>
#include <vector>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "analysis/xid_matrix.hpp"

namespace titan::analysis {

/// A learned precursor rule: seeing `precursor` predicts `target` within
/// `horizon_s` with the observed conditional probability.
struct PrecursorRule {
  xid::ErrorKind precursor{};
  xid::ErrorKind target{};
  double probability = 0.0;   ///< P(target within horizon | precursor), training
  std::uint64_t support = 0;  ///< precursor occurrences in training
};

class FailurePredictor {
 public:
  /// Learn rules for predicting `target` from a training stream.
  /// Rules with support below `min_support` are discarded (they would be
  /// noise); same-kind rules are kept only when `allow_self` (a burst of
  /// the target predicts more of it, which is true but operationally
  /// uninteresting).
  static FailurePredictor fit(std::span<const parse::ParsedEvent> training,
                              xid::ErrorKind target, double horizon_s,
                              std::uint64_t min_support = 5, bool allow_self = false);
  /// Frame kernel: flat per-kind counters over the time/kind columns; the
  /// learned rule *set* matches the span path (rule order is normalized to
  /// descending probability with enum order breaking ties).
  static FailurePredictor fit(const EventFrame& training, xid::ErrorKind target,
                              double horizon_s, std::uint64_t min_support = 5,
                              bool allow_self = false);

  [[nodiscard]] const std::vector<PrecursorRule>& rules() const noexcept { return rules_; }
  [[nodiscard]] xid::ErrorKind target() const noexcept { return target_; }
  [[nodiscard]] double horizon_s() const noexcept { return horizon_s_; }

  /// An alarm: at `time`, the predictor claims `target` will occur within
  /// the horizon (machine-wide).
  struct Alarm {
    stats::TimeSec time = 0;
    xid::ErrorKind precursor{};
    double probability = 0.0;
  };

  /// Fire alarms over a stream using rules with probability >= threshold.
  [[nodiscard]] std::vector<Alarm> predict(std::span<const parse::ParsedEvent> stream,
                                           double threshold) const;
  [[nodiscard]] std::vector<Alarm> predict(const EventFrame& stream, double threshold) const;

  /// Evaluation against ground truth.
  struct Evaluation {
    std::size_t alarms = 0;
    std::size_t true_positives = 0;   ///< alarms with target inside horizon
    std::size_t targets = 0;          ///< target occurrences in the stream
    std::size_t targets_covered = 0;  ///< targets preceded by an alarm

    [[nodiscard]] double precision() const noexcept {
      return alarms > 0 ? static_cast<double>(true_positives) / static_cast<double>(alarms)
                        : 0.0;
    }
    [[nodiscard]] double recall() const noexcept {
      return targets > 0
                 ? static_cast<double>(targets_covered) / static_cast<double>(targets)
                 : 0.0;
    }
    [[nodiscard]] double f1() const noexcept {
      const double p = precision();
      const double r = recall();
      return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
    }
  };

  [[nodiscard]] Evaluation evaluate(std::span<const parse::ParsedEvent> stream,
                                    double threshold) const;
  /// Frame kernel: target times come straight from the frame's per-kind
  /// CSR slice (zero copy).
  [[nodiscard]] Evaluation evaluate(const EventFrame& stream, double threshold) const;

 private:
  xid::ErrorKind target_{};
  double horizon_s_ = 0.0;
  std::vector<PrecursorRule> rules_;
};

}  // namespace titan::analysis
