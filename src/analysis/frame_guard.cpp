#include "analysis/frame_guard.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace titan::analysis::frame_guard {

namespace {

void default_handler(unsigned column, unsigned allowed) noexcept {
  std::fprintf(stderr,
               "titanrel: frame guard violation: kernel read EventFrame column group "
               "'%s' but its capability mask allows 0x%x -- fix the registry "
               "declaration (titanlint's cap-undeclared rule catches this statically)\n",
               column_name(column), allowed);
  std::abort();
}

std::atomic<Handler> g_handler{&default_handler};

}  // namespace

Handler set_handler(Handler handler) noexcept {
  return g_handler.exchange(handler == nullptr ? &default_handler : handler);
}

bool enabled() noexcept {
  static const bool on = [] {
    const char* env = std::getenv("TITANREL_FRAME_GUARD");
    return env == nullptr || (env[0] != '0' || env[1] != '\0');
  }();
  return on;
}

const char* column_name(unsigned column) noexcept {
  switch (column) {
    case kColumnBase:
      return "base";
    case kColumnCards:
      return "cards";
    case kColumnJobs:
      return "jobs";
    default:
      return "?";
  }
}

void violation(unsigned column) noexcept {
  g_handler.load()(column, tl_allowed);
}

}  // namespace titan::analysis::frame_guard
