// The DBE / ECC-page-retirement inter-arrival study (Fig. 8,
// Observation 5).
//
// For each retirement (XID 63), measure the delay since the last DBE on
// the whole machine and bucket it as the paper does: within 10 minutes
// (the driver's fast retirement after the DBE itself), 10 minutes..6
// hours, and beyond (the two-SBE-same-page path).  Also count successive
// DBE pairs with no retirement in between -- the paper's logging puzzle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "stats/histogram.hpp"

namespace titan::analysis {

struct RetirementDelayStudy {
  std::uint64_t within_10min = 0;
  std::uint64_t min10_to_6h = 0;
  std::uint64_t beyond_6h = 0;
  std::uint64_t before_any_dbe = 0;  ///< retirement with no prior DBE at all
  /// Successive DBE pairs with no retirement logged between them.
  std::uint64_t dbe_pairs_without_retirement = 0;
  /// Raw delays (seconds) since the last DBE, one per retirement.
  std::vector<double> delays_s;

  [[nodiscard]] std::uint64_t total_retirements() const noexcept {
    return within_10min + min10_to_6h + beyond_6h + before_any_dbe;
  }
};

/// Only DBEs occurring after `accounting_from` count ("DBE occurrences
/// happening only after the period Jan'2014 are accounted toward this
/// analysis"); pass the new-driver date.
[[nodiscard]] RetirementDelayStudy retirement_delay_study(
    std::span<const parse::ParsedEvent> events, stats::TimeSec accounting_from);
/// Frame kernel: merge-walks only the DBE and retirement CSR slices (by
/// row id, so stream order -- and hence every tie-break -- is preserved)
/// instead of scanning the whole stream.
[[nodiscard]] RetirementDelayStudy retirement_delay_study(const EventFrame& frame,
                                                          stats::TimeSec accounting_from);
/// Generalized kernel for fleets whose memory-repair record is not XID 63
/// (e.g. Ampere row-remapping): `trigger_kind` plays the DBE role,
/// `repair_kind` the retirement role.  The two-argument overloads forward
/// here with the paper's (kDoubleBitError, kPageRetirement) pair.
[[nodiscard]] RetirementDelayStudy retirement_delay_study(const EventFrame& frame,
                                                          stats::TimeSec accounting_from,
                                                          xid::ErrorKind trigger_kind,
                                                          xid::ErrorKind repair_kind);

}  // namespace titan::analysis
