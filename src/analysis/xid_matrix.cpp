#include "analysis/xid_matrix.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace titan::analysis {

double FollowMatrix::at(xid::ErrorKind a, xid::ErrorKind b) const {
  const auto find = [&](xid::ErrorKind k) -> std::size_t {
    const auto it = std::find(kinds.begin(), kinds.end(), k);
    if (it == kinds.end()) throw std::invalid_argument{"FollowMatrix: kind not in matrix"};
    return static_cast<std::size_t>(it - kinds.begin());
  };
  return fractions.at(find(a), find(b));
}

std::vector<std::string> FollowMatrix::labels() const {
  std::vector<std::string> out;
  out.reserve(kinds.size());
  for (const auto k : kinds) out.emplace_back(xid::token(k));
  return out;
}

FollowMatrix follow_matrix(std::span<const parse::ParsedEvent> events,
                           std::span<const xid::ErrorKind> kinds_of_interest, double window_s,
                           bool include_same_type) {
  // Forwarding adapter: the frame kernel below is the one implementation.
  return follow_matrix(EventFrame::build(events), kinds_of_interest, window_s,
                       include_same_type);
}

FollowMatrix follow_matrix(const EventFrame& frame,
                           std::span<const xid::ErrorKind> kinds_of_interest, double window_s,
                           bool include_same_type) {
  const std::size_t n = kinds_of_interest.size();
  // Flat ErrorKind -> matrix-index table (npos marks kinds outside the
  // matrix), replacing the per-event unordered_map probes.
  constexpr std::size_t kNotOfInterest = static_cast<std::size_t>(-1);
  std::array<std::size_t, xid::kErrorKindCount> kind_index;
  kind_index.fill(kNotOfInterest);
  for (std::size_t i = 0; i < n; ++i) {
    kind_index[static_cast<std::size_t>(kinds_of_interest[i])] = i;
  }

  stats::Grid2D followed{std::max<std::size_t>(n, 1), std::max<std::size_t>(n, 1)};
  std::vector<std::uint64_t> occurrences(n, 0);
  const auto window = static_cast<stats::TimeSec>(std::llround(window_s));
  const auto times = frame.times();
  const auto kinds = frame.kinds();

  // `seen` reset is O(1) per outer event: a slot counts as set only when
  // stamped with the current outer index.
  std::vector<std::size_t> seen_stamp(n, kNotOfInterest);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const std::size_t a = kind_index[static_cast<std::size_t>(kinds[i])];
    if (a == kNotOfInterest) continue;
    ++occurrences[a];
    for (std::size_t j = i + 1; j < frame.size(); ++j) {
      if (times[j] - times[i] >= window) break;
      const std::size_t b = kind_index[static_cast<std::size_t>(kinds[j])];
      if (b == kNotOfInterest) continue;
      if (!include_same_type && b == a) continue;
      if (seen_stamp[b] != i) {
        seen_stamp[b] = i;
        followed.add(a, b);
      }
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      followed.at(a, b) =
          occurrences[a] > 0 ? followed.at(a, b) / static_cast<double>(occurrences[a]) : 0.0;
    }
  }
  return FollowMatrix{std::vector<xid::ErrorKind>(kinds_of_interest.begin(),
                                                  kinds_of_interest.end()),
                      std::move(followed)};
}

std::vector<xid::ErrorKind> fig13_kinds() {
  using xid::ErrorKind;
  return {ErrorKind::kGraphicsEngineException, ErrorKind::kMemoryPageFault,
          ErrorKind::kCorruptedPushBuffer,     ErrorKind::kDriverFirmware,
          ErrorKind::kGpuStoppedProcessing,    ErrorKind::kCtxSwitchFault,
          ErrorKind::kPreemptiveCleanup,       ErrorKind::kDoubleBitError,
          ErrorKind::kUcHaltOldDriver,         ErrorKind::kUcHaltNewDriver,
          ErrorKind::kPageRetirement,          ErrorKind::kOffTheBus};
}

std::vector<xid::ErrorKind> isolated_kinds(const FollowMatrix& matrix, double threshold) {
  std::vector<xid::ErrorKind> out;
  for (std::size_t i = 0; i < matrix.kinds.size(); ++i) {
    if (matrix.fractions.at(i, i) <= threshold) out.push_back(matrix.kinds[i]);
  }
  return out;
}

}  // namespace titan::analysis
