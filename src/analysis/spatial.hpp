// Spatial analyses: cabinet-grid heatmaps (Figs. 3(a), 5, 7, 12, 14),
// cage distributions with all-events vs distinct-cards views (Figs. 3(b),
// 5, 7, 15), and the per-structure breakdown (Fig. 3(c)).
#pragma once

#include <array>
#include <span>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "gpu/fleet.hpp"
#include "stats/histogram.hpp"
#include "topology/machine.hpp"

namespace titan::analysis {

/// Cabinet-grid (kCabinetGridY rows x kCabinetGridX columns) event-count
/// heatmap for one kind.  Grid rows are cab_y, columns cab_x.
[[nodiscard]] stats::Grid2D cabinet_heatmap(std::span<const parse::ParsedEvent> events,
                                            xid::ErrorKind kind);
/// Frame kernel: reads the precomputed location column over the kind's
/// CSR slice instead of re-running topology::locate per event.
[[nodiscard]] stats::Grid2D cabinet_heatmap(const EventFrame& frame, xid::ErrorKind kind);

/// Cage-position distribution of one kind.
struct CageDistribution {
  std::array<std::uint64_t, topology::kCagesPerCabinet> event_counts{};
  std::array<std::uint64_t, topology::kCagesPerCabinet> distinct_cards{};

  [[nodiscard]] std::uint64_t total_events() const noexcept;
  /// Top-cage excess: events in the top cage / events in the bottom cage
  /// (the paper's thermal-sensitivity signal; > 1 means hotter is worse).
  [[nodiscard]] double top_to_bottom_ratio() const noexcept;
};

/// Counts events per cage and, via the fleet ledger, the number of
/// distinct cards that ever raised the kind in each cage ("counting only
/// one DBE error per card ... shows that the trend only gets stronger").
[[nodiscard]] CageDistribution cage_distribution(std::span<const parse::ParsedEvent> events,
                                                 xid::ErrorKind kind,
                                                 const gpu::FleetLedger& ledger);
/// Frame kernel: the card join was already paid at frame build (the frame
/// must have been built with the ledger).
[[nodiscard]] CageDistribution cage_distribution(const EventFrame& frame, xid::ErrorKind kind);

/// Per-structure breakdown of ECC events (Fig. 3(c)): counts by decoded
/// memory structure.
struct StructureBreakdown {
  std::array<std::uint64_t, xid::kMemoryStructureCount> counts{};

  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] double share(xid::MemoryStructure s) const noexcept;
};

[[nodiscard]] StructureBreakdown structure_breakdown(std::span<const parse::ParsedEvent> events,
                                                     xid::ErrorKind kind);
[[nodiscard]] StructureBreakdown structure_breakdown(const EventFrame& frame,
                                                     xid::ErrorKind kind);

}  // namespace titan::analysis
