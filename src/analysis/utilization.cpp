#include "analysis/utilization.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.hpp"
#include "stats/topk.hpp"

namespace titan::analysis {

std::string_view metric_name(JobMetric metric) noexcept {
  switch (metric) {
    case JobMetric::kMaxMemory: return "max memory";
    case JobMetric::kTotalMemory: return "total memory";
    case JobMetric::kNodeCount: return "node count";
    case JobMetric::kGpuCoreHours: return "GPU core hours";
  }
  return "?";
}

double metric_value(const sched::JobRecord& job, JobMetric metric) noexcept {
  switch (metric) {
    case JobMetric::kMaxMemory: return job.max_memory_gb;
    case JobMetric::kTotalMemory: return job.total_memory_gb;
    case JobMetric::kNodeCount: return static_cast<double>(job.node_count());
    case JobMetric::kGpuCoreHours: return job.gpu_core_hours;
  }
  return 0.0;
}

UtilizationStudy utilization_study(const sched::JobTrace& trace,
                                   const std::vector<fault::SbeStrike>& strikes,
                                   stats::TimeSec window_begin, stats::TimeSec window_end) {
  UtilizationStudy out;
  out.job_sbe = logsim::per_job_sbe_counts(strikes, trace, window_begin, window_end);

  // Whole-campaign offender ranking (cards), and the nodes hosting them.
  std::unordered_map<xid::CardId, std::uint64_t> card_totals;
  std::unordered_map<xid::CardId, topology::NodeId> card_node;
  for (const auto& s : strikes) {
    ++card_totals[s.card];
    card_node[s.card] = s.node;
  }
  out.top10_offenders = stats::top_k_keys(card_totals, 10);
  std::unordered_set<topology::NodeId> offender_nodes;
  for (const auto card : out.top10_offenders) offender_nodes.insert(card_node.at(card));

  const auto job_uses_offender = [&](const sched::JobRecord& job) {
    return std::any_of(job.nodes.begin(), job.nodes.end(),
                       [&](topology::NodeId n) { return offender_nodes.contains(n); });
  };

  // One pass over the window jobs: a single trace lookup per record
  // fills the paired series for every metric plus the per-user (Fig. 20)
  // aggregation.
  constexpr std::array kMetrics = {JobMetric::kMaxMemory, JobMetric::kTotalMemory,
                                   JobMetric::kNodeCount, JobMetric::kGpuCoreHours};
  std::vector<double> sbe_all;
  std::vector<double> sbe_excl;
  std::array<std::vector<double>, kMetrics.size()> x_all;
  std::array<std::vector<double>, kMetrics.size()> x_excl;
  sbe_all.reserve(out.job_sbe.size());
  for (auto& v : x_all) v.reserve(out.job_sbe.size());

  struct UserAgg {
    double core_hours = 0.0;
    double sbe = 0.0;
  };
  std::unordered_map<xid::UserId, UserAgg> users_all;
  std::unordered_map<xid::UserId, UserAgg> users_excl;

  for (const auto& rec : out.job_sbe) {
    const auto& job = trace.job(rec.job);
    const bool excl = job_uses_offender(job);
    const auto sbe = static_cast<double>(rec.sbe_count);
    sbe_all.push_back(sbe);
    if (!excl) sbe_excl.push_back(sbe);
    for (std::size_t m = 0; m < kMetrics.size(); ++m) {
      const double v = metric_value(job, kMetrics[m]);
      x_all[m].push_back(v);
      if (!excl) x_excl[m].push_back(v);
    }
    auto& all_agg = users_all[job.user];
    all_agg.core_hours += job.gpu_core_hours;
    all_agg.sbe += sbe;
    if (!excl) {
      auto& excl_agg = users_excl[job.user];
      excl_agg.core_hours += job.gpu_core_hours;
      excl_agg.sbe += sbe;
    }
  }

  for (std::size_t m = 0; m < kMetrics.size(); ++m) {
    MetricCorrelation mc;
    mc.metric = kMetrics[m];
    mc.spearman_all = stats::spearman(x_all[m], sbe_all);
    mc.pearson_all = stats::pearson(x_all[m], sbe_all);
    mc.spearman_excl = stats::spearman(x_excl[m], sbe_excl);
    mc.pearson_excl = stats::pearson(x_excl[m], sbe_excl);
    mc.jobs_all = x_all[m].size();
    mc.jobs_excl = x_excl[m].size();
    out.metrics.push_back(mc);
  }
  const auto user_corr = [](const std::unordered_map<xid::UserId, UserAgg>& users) {
    std::vector<std::pair<xid::UserId, UserAgg>> ordered(users.begin(), users.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<double> hours;
    std::vector<double> sbes;
    for (const auto& [id, agg] : ordered) {
      hours.push_back(agg.core_hours);
      sbes.push_back(agg.sbe);
    }
    return stats::spearman(hours, sbes);
  };
  out.user_spearman_all = user_corr(users_all);
  out.user_spearman_excl = user_corr(users_excl);
  out.users_all = users_all.size();
  out.users_excl = users_excl.size();
  return out;
}

SortedSeriesBins sorted_series_bins(const sched::JobTrace& trace,
                                    const std::vector<logsim::JobSbeRecord>& jobs,
                                    JobMetric metric, std::size_t bins) {
  SortedSeriesBins out;
  if (jobs.empty() || bins == 0) return out;
  std::vector<double> metric_values;
  std::vector<double> sbe_values;
  metric_values.reserve(jobs.size());
  for (const auto& rec : jobs) {
    metric_values.push_back(metric_value(trace.job(rec.job), metric));
    sbe_values.push_back(static_cast<double>(rec.sbe_count));
  }
  const auto metric_norm = stats::normalize_to_mean(metric_values);
  const auto sbe_norm = stats::normalize_to_mean(sbe_values);
  const auto perm = stats::sort_permutation(metric_norm);
  const auto m_sorted = stats::apply_permutation(metric_norm, perm);
  const auto s_sorted = stats::apply_permutation(sbe_norm, perm);

  out.metric_mean.assign(bins, 0.0);
  out.sbe_mean.assign(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (std::size_t i = 0; i < m_sorted.size(); ++i) {
    const std::size_t b = std::min(bins - 1, i * bins / m_sorted.size());
    out.metric_mean[b] += m_sorted[i];
    out.sbe_mean[b] += s_sorted[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) {
      out.metric_mean[b] /= static_cast<double>(counts[b]);
      out.sbe_mean[b] /= static_cast<double>(counts[b]);
    }
  }
  return out;
}

}  // namespace titan::analysis
