// Temporal re-occurrence (parent/child) analysis between XID kinds
// (Fig. 13, Observation 9).
//
// For an ordered pair (A, B): the fraction of A events that are followed
// by at least one B event within the window (300 s in the paper).  The
// diagonal captures same-type repetition (burstiness / per-job fan-out);
// the paper also shows the matrix with same-type pairs excluded to make
// the cross-type structure visible.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "stats/histogram.hpp"

namespace titan::analysis {

struct FollowMatrix {
  std::vector<xid::ErrorKind> kinds;  ///< row/col order
  stats::Grid2D fractions;            ///< fractions[a][b] = P(B within window | A)

  FollowMatrix(std::vector<xid::ErrorKind> ks, stats::Grid2D m)
      : kinds{std::move(ks)}, fractions{std::move(m)} {}

  [[nodiscard]] double at(xid::ErrorKind a, xid::ErrorKind b) const;
  [[nodiscard]] std::vector<std::string> labels() const;
};

/// Compute the following-failure matrix over all kinds present in
/// `kinds_of_interest`.  `include_same_type` false zeroes the diagonal's
/// contribution by skipping same-kind followers (the paper's bottom
/// heatmap).
[[nodiscard]] FollowMatrix follow_matrix(std::span<const parse::ParsedEvent> events,
                                         std::span<const xid::ErrorKind> kinds_of_interest,
                                         double window_s, bool include_same_type);
/// Frame kernel: one pass over the time/kind columns with flat kind-index
/// tables (no per-event hashing, no per-event `seen` allocation).
[[nodiscard]] FollowMatrix follow_matrix(const EventFrame& frame,
                                         std::span<const xid::ErrorKind> kinds_of_interest,
                                         double window_s, bool include_same_type);

/// The kind set the paper's Fig. 13 axes use.
[[nodiscard]] std::vector<xid::ErrorKind> fig13_kinds();

/// Kinds whose events are "relatively more isolated in nature" under the
/// matrix: no same-type follower within the window for any occurrence.
[[nodiscard]] std::vector<xid::ErrorKind> isolated_kinds(const FollowMatrix& matrix,
                                                         double threshold = 0.01);

}  // namespace titan::analysis
