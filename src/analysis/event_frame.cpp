#include "analysis/event_frame.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "par/parallel.hpp"

namespace titan::analysis {

namespace {

/// Column-fill grain: locate/month/card per row is tens of nanoseconds, so
/// a few thousand rows amortize one pool dispatch.
constexpr std::size_t kGrain = 4096;

/// The row fields shared by both source stream types.
struct SourceRow {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  xid::ErrorKind kind = xid::ErrorKind::kSingleBitError;
  xid::MemoryStructure structure = xid::MemoryStructure::kNone;
  xid::JobId job = xid::kNoJob;
  bool root = true;
};

}  // namespace

template <typename GetRow>
EventFrame EventFrame::build_impl(std::size_t n, const GetRow& get_row,
                                  const gpu::FleetLedger* ledger) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error{"EventFrame: stream exceeds 32-bit row ids"};
  }
  EventFrame frame;
  frame.time_.resize(n);
  frame.node_.resize(n);
  frame.kind_.resize(n);
  frame.structure_.resize(n);
  frame.location_.resize(n);
  frame.month_ordinal_.resize(n);
  frame.card_.resize(n);
  frame.job_.resize(n);
  frame.root_.resize(n);
  frame.kind_rows_.resize(n);
  frame.kind_times_.resize(n);

  // Pass 1: fill every column.  Each index writes only its own slots, so
  // the result is identical at any pool width.
  par::parallel_for(0, n, kGrain, [&](std::size_t i) {
    const SourceRow row = get_row(i);
    frame.time_[i] = row.time;
    frame.node_[i] = row.node;
    frame.kind_[i] = row.kind;
    frame.structure_[i] = row.structure;
    frame.location_[i] = topology::locate(row.node);
    frame.month_ordinal_[i] =
        static_cast<std::int32_t>(stats::month_ordinal(stats::to_civil(row.time).date));
    frame.card_[i] = ledger != nullptr ? ledger->card_at(row.node, row.time) : xid::kInvalidCard;
    frame.job_[i] = row.job;
    frame.root_[i] = row.root ? 1 : 0;
  });

  // Pass 2: per-kind CSR via a chunked stable counting sort.  Chunk kind
  // histograms and the derived per-chunk scatter bases depend only on the
  // stream, so the scatter below is deterministic and keeps stream order
  // within each kind.
  constexpr std::size_t K = xid::kErrorKindCount;
  const std::size_t chunks = n == 0 ? 0 : (n - 1) / kGrain + 1;
  std::vector<std::array<std::uint32_t, K>> chunk_counts(chunks);
  par::parallel_for(0, chunks, 1, [&](std::size_t c) {
    auto& counts = chunk_counts[c];
    counts.fill(0);
    const std::size_t lo = c * kGrain;
    const std::size_t hi = std::min(lo + kGrain, n);
    for (std::size_t i = lo; i < hi; ++i) {
      ++counts[static_cast<std::size_t>(frame.kind_[i])];
    }
  });

  std::array<std::uint32_t, K> totals{};
  for (const auto& counts : chunk_counts) {
    for (std::size_t k = 0; k < K; ++k) totals[k] += counts[k];
  }
  frame.kind_offsets_[0] = 0;
  for (std::size_t k = 0; k < K; ++k) {
    frame.kind_offsets_[k + 1] = frame.kind_offsets_[k] + totals[k];
  }

  // Per-chunk scatter base: kind offset plus everything earlier chunks
  // contribute to that kind.  Reuses chunk_counts storage.
  std::array<std::uint32_t, K> running{};
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t k = 0; k < K; ++k) {
      const std::uint32_t count = chunk_counts[c][k];
      chunk_counts[c][k] = frame.kind_offsets_[k] + running[k];
      running[k] += count;
    }
  }
  par::parallel_for(0, chunks, 1, [&](std::size_t c) {
    auto cursor = chunk_counts[c];
    const std::size_t lo = c * kGrain;
    const std::size_t hi = std::min(lo + kGrain, n);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto pos = cursor[static_cast<std::size_t>(frame.kind_[i])]++;
      frame.kind_rows_[pos] = static_cast<std::uint32_t>(i);
      frame.kind_times_[pos] = frame.time_[i];
    }
  });
  return frame;
}

EventFrame EventFrame::build(std::span<const xid::Event> events, const gpu::FleetLedger* ledger) {
  // Select the console-visible rows first (SBEs never reach the console
  // log), so row ids match the `as_parsed` stream exactly.
  std::vector<std::uint32_t> visible;
  visible.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == xid::ErrorKind::kSingleBitError) continue;
    visible.push_back(static_cast<std::uint32_t>(i));
  }
  return build_impl(
      visible.size(),
      [&](std::size_t i) {
        const xid::Event& e = events[visible[i]];
        return SourceRow{e.time, e.node, e.kind, e.structure, e.job, !e.is_child()};
      },
      ledger);
}

EventFrame EventFrame::build(std::span<const parse::ParsedEvent> events,
                             const gpu::FleetLedger* ledger) {
  return build_impl(
      events.size(),
      [&](std::size_t i) {
        const parse::ParsedEvent& e = events[i];
        return SourceRow{e.time, e.node, e.kind, e.structure, xid::kNoJob, true};
      },
      ledger);
}

EventFrame EventFrame::from_columns(std::span<const stats::TimeSec> times,
                                    std::span<const topology::NodeId> nodes,
                                    std::span<const xid::ErrorKind> kinds,
                                    std::span<const xid::MemoryStructure> structures,
                                    const gpu::FleetLedger* ledger) {
  if (nodes.size() != times.size() || kinds.size() != times.size() ||
      structures.size() != times.size()) {
    throw std::invalid_argument{"EventFrame::from_columns: column lengths differ"};
  }
  return build_impl(
      times.size(),
      [&](std::size_t i) {
        return SourceRow{times[i], nodes[i], kinds[i], structures[i], xid::kNoJob, true};
      },
      ledger);
}

}  // namespace titan::analysis
