// Columnar (SoA) index over the parsed event stream.
//
// Every figure in the paper is a scan over the same 21-month event stream
// keyed by kind, location, month, card, or job.  The span-based entry
// points in the analysis modules re-derive those keys per call: `of_kind`
// materializes a filtered copy, the spatial analyses re-run
// `topology::locate` per event, and the card join is a ledger lookup per
// event.  EventFrame pays those costs exactly once: one parallel build
// pass (deterministic at any `titan::par` width) produces
//
//   * plain columns  -- time, node, kind, structure,
//   * derived columns -- decoded NodeLocation, absolute calendar-month
//     ordinal (stats::month_ordinal), ledger-joined card serial, job id
//     and root/child flag (ground-truth builds only),
//   * a per-kind CSR index -- for each ErrorKind, the row ids of its
//     events in stream order plus a *contiguous* copy of their
//     timestamps, so "times of kind" is a zero-copy span.
//
// Analyses then run as single-pass kernels over spans.  The frame mirrors
// the console-recoverable view (`as_parsed`): building from ground-truth
// xid::Event streams drops SBEs, which never reach the console log.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/frame_guard.hpp"
#include "gpu/fleet.hpp"
#include "parse/console.hpp"
#include "stats/calendar.hpp"
#include "topology/machine.hpp"
#include "xid/event.hpp"

namespace titan::analysis {

class EventFrame {
 public:
  EventFrame() = default;

  /// Build from ground truth, downgrading to the console-recoverable view
  /// (SBEs dropped, like `as_parsed`) but keeping the job/root columns a
  /// richer join would need.  With a ledger, the card column holds the
  /// card installed in the event's node at the event's time.
  [[nodiscard]] static EventFrame build(std::span<const xid::Event> events,
                                        const gpu::FleetLedger* ledger = nullptr);

  /// Build from an already console-recovered stream (jobs unknown: the
  /// job column is kNoJob and every row is a root).
  [[nodiscard]] static EventFrame build(std::span<const parse::ParsedEvent> events,
                                        const gpu::FleetLedger* ledger = nullptr);

  /// Build directly from decoded columns (the TDF zero-copy load path):
  /// same frame the ParsedEvent overload would produce from the row view
  /// of the same stream, without materializing ParsedEvent structs.  All
  /// four spans must have equal lengths.
  [[nodiscard]] static EventFrame from_columns(std::span<const stats::TimeSec> times,
                                               std::span<const topology::NodeId> nodes,
                                               std::span<const xid::ErrorKind> kinds,
                                               std::span<const xid::MemoryStructure> structures,
                                               const gpu::FleetLedger* ledger = nullptr);

  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }
  [[nodiscard]] bool empty() const noexcept { return time_.empty(); }

  // Every column accessor checks the thread's FrameGuardScope (if any)
  // before handing out the span -- the runtime half of the capability
  // contract titanlint verifies statically.

  // -- Plain columns (one entry per retained event, stream order) --------
  [[nodiscard]] std::span<const stats::TimeSec> times() const noexcept {
    frame_guard::check(kColumnBase);
    return time_;
  }
  [[nodiscard]] std::span<const topology::NodeId> nodes() const noexcept {
    frame_guard::check(kColumnBase);
    return node_;
  }
  [[nodiscard]] std::span<const xid::ErrorKind> kinds() const noexcept {
    frame_guard::check(kColumnBase);
    return kind_;
  }
  [[nodiscard]] std::span<const xid::MemoryStructure> structures() const noexcept {
    frame_guard::check(kColumnBase);
    return structure_;
  }

  // -- Derived columns ----------------------------------------------------
  /// Decoded physical location (precomputed `topology::locate`).
  [[nodiscard]] std::span<const topology::NodeLocation> locations() const noexcept {
    frame_guard::check(kColumnBase);
    return location_;
  }
  /// Absolute calendar-month ordinal of the event time
  /// (`stats::month_ordinal`); subtract the ordinal of a window origin to
  /// get a monthly-series bucket.
  [[nodiscard]] std::span<const std::int32_t> month_ordinals() const noexcept {
    frame_guard::check(kColumnBase);
    return month_ordinal_;
  }
  /// Ledger-joined card serial (kInvalidCard when built without a ledger
  /// or the slot was empty).
  [[nodiscard]] std::span<const xid::CardId> cards() const noexcept {
    frame_guard::check(kColumnCards);
    return card_;
  }
  /// Job attribution (kNoJob for parsed-stream builds).
  [[nodiscard]] std::span<const xid::JobId> jobs() const noexcept {
    frame_guard::check(kColumnJobs);
    return job_;
  }
  /// 1 for root events, 0 for propagated children (parsed-stream builds
  /// cannot tell, so every row is a root there).
  [[nodiscard]] std::span<const std::uint8_t> roots() const noexcept {
    frame_guard::check(kColumnJobs);
    return root_;
  }

  // -- Per-kind CSR index -------------------------------------------------
  [[nodiscard]] std::size_t count_of(xid::ErrorKind kind) const noexcept {
    frame_guard::check(kColumnBase);
    const auto k = static_cast<std::size_t>(kind);
    return kind_offsets_[k + 1] - kind_offsets_[k];
  }
  /// Row ids of all events of `kind`, in stream order.
  [[nodiscard]] std::span<const std::uint32_t> rows_of(xid::ErrorKind kind) const noexcept {
    frame_guard::check(kColumnBase);
    const auto k = static_cast<std::size_t>(kind);
    return std::span<const std::uint32_t>{kind_rows_}.subspan(
        kind_offsets_[k], kind_offsets_[k + 1] - kind_offsets_[k]);
  }
  /// Timestamps of all events of `kind`, contiguous and in stream order
  /// (time-sorted when the source stream was) -- the zero-copy
  /// `times_of_kind`.
  [[nodiscard]] std::span<const stats::TimeSec> times_of(xid::ErrorKind kind) const noexcept {
    frame_guard::check(kColumnBase);
    const auto k = static_cast<std::size_t>(kind);
    return std::span<const stats::TimeSec>{kind_times_}.subspan(
        kind_offsets_[k], kind_offsets_[k + 1] - kind_offsets_[k]);
  }

  /// Reconstruct the console-view record for one row (convenience for the
  /// adapter overloads; analyses should read columns instead).
  [[nodiscard]] parse::ParsedEvent row(std::size_t i) const {
    return parse::ParsedEvent{time_[i], node_[i], kind_[i], structure_[i]};
  }

  friend bool operator==(const EventFrame& a, const EventFrame& b) = default;

 private:
  template <typename GetRow>
  static EventFrame build_impl(std::size_t n, const GetRow& get_row,
                               const gpu::FleetLedger* ledger);

  std::vector<stats::TimeSec> time_;
  std::vector<topology::NodeId> node_;
  std::vector<xid::ErrorKind> kind_;
  std::vector<xid::MemoryStructure> structure_;
  std::vector<topology::NodeLocation> location_;
  std::vector<std::int32_t> month_ordinal_;
  std::vector<xid::CardId> card_;
  std::vector<xid::JobId> job_;
  std::vector<std::uint8_t> root_;

  /// CSR: events of kind k are kind_rows_[kind_offsets_[k] ..
  /// kind_offsets_[k+1]), stream order; kind_times_ is the parallel
  /// timestamp array.
  std::array<std::uint32_t, xid::kErrorKindCount + 1> kind_offsets_{};
  std::vector<std::uint32_t> kind_rows_;
  std::vector<stats::TimeSec> kind_times_;
};

}  // namespace titan::analysis
