// Monthly frequency analyses (Figs. 2, 4, 6, 9, 10, 11) and MTBF
// reporting (Observation 1).
#pragma once

#include <span>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "stats/reliability.hpp"

namespace titan::analysis {

/// Monthly counts of one error kind over the study window.
[[nodiscard]] stats::MonthlySeries monthly_frequency(std::span<const parse::ParsedEvent> events,
                                                     xid::ErrorKind kind, stats::TimeSec begin,
                                                     stats::TimeSec end);
/// Frame kernel: single pass over the kind's CSR slice, bucketing with the
/// precomputed month-ordinal column.
[[nodiscard]] stats::MonthlySeries monthly_frequency(const EventFrame& frame, xid::ErrorKind kind,
                                                     stats::TimeSec begin, stats::TimeSec end);

/// MTBF of one error kind over the window.
[[nodiscard]] stats::MtbfEstimate kind_mtbf(std::span<const parse::ParsedEvent> events,
                                            xid::ErrorKind kind, stats::TimeSec begin,
                                            stats::TimeSec end);
[[nodiscard]] stats::MtbfEstimate kind_mtbf(const EventFrame& frame, xid::ErrorKind kind,
                                            stats::TimeSec begin, stats::TimeSec end);

/// Burstiness diagnostic used for Observation 6: the index of dispersion
/// of daily counts (variance / mean; 1 for a Poisson process, large for
/// bursty arrivals).
[[nodiscard]] double daily_dispersion_index(std::span<const parse::ParsedEvent> events,
                                            xid::ErrorKind kind, stats::TimeSec begin,
                                            stats::TimeSec end);
[[nodiscard]] double daily_dispersion_index(const EventFrame& frame, xid::ErrorKind kind,
                                            stats::TimeSec begin, stats::TimeSec end);

}  // namespace titan::analysis
