#include "analysis/workload_char.hpp"

#include <algorithm>

#include "stats/descriptive.hpp"

namespace titan::analysis {

double field_value(const sched::JobRecord& job, JobField field) noexcept {
  switch (field) {
    case JobField::kGpuCoreHours: return job.gpu_core_hours;
    case JobField::kNodeCount: return static_cast<double>(job.node_count());
    case JobField::kWallHours: return job.wall_hours();
    case JobField::kMaxMemory: return job.max_memory_gb;
    case JobField::kTotalMemory: return job.total_memory_gb;
  }
  return 0.0;
}

Profile job_profile(const sched::JobTrace& trace, JobField sort_key, JobField target,
                    std::size_t bins) {
  Profile out;
  const auto& jobs = trace.jobs();
  if (jobs.empty() || bins == 0) return out;

  std::vector<double> keys;
  std::vector<double> targets;
  keys.reserve(jobs.size());
  for (const auto& job : jobs) {
    keys.push_back(field_value(job, sort_key));
    targets.push_back(field_value(job, target));
  }
  const auto keys_norm = stats::normalize_to_mean(keys);
  const auto targets_norm = stats::normalize_to_mean(targets);
  const auto perm = stats::sort_permutation(keys_norm);
  const auto k_sorted = stats::apply_permutation(keys_norm, perm);
  const auto t_sorted = stats::apply_permutation(targets_norm, perm);

  out.key_mean.assign(bins, 0.0);
  out.target_mean.assign(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (std::size_t i = 0; i < k_sorted.size(); ++i) {
    const std::size_t b = std::min(bins - 1, i * bins / k_sorted.size());
    out.key_mean[b] += k_sorted[i];
    out.target_mean[b] += t_sorted[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) {
      out.key_mean[b] /= static_cast<double>(counts[b]);
      out.target_mean[b] /= static_cast<double>(counts[b]);
    }
  }
  return out;
}

namespace {

/// Mean percentile (0..1) that the top-`top_fraction` jobs by `rank_by`
/// occupy in the ordering by `percentile_of`.
[[nodiscard]] double cross_percentile(const std::vector<sched::JobRecord>& jobs,
                                      JobField rank_by, JobField percentile_of,
                                      double top_fraction) {
  const std::size_t n = jobs.size();
  if (n == 0) return 0.0;
  std::vector<double> by;
  std::vector<double> of;
  by.reserve(n);
  of.reserve(n);
  for (const auto& job : jobs) {
    by.push_back(field_value(job, rank_by));
    of.push_back(field_value(job, percentile_of));
  }
  const auto of_ranks = stats::average_ranks(of);
  const auto perm = stats::sort_permutation(by);  // ascending
  const auto top = std::max<std::size_t>(1, static_cast<std::size_t>(
                                                static_cast<double>(n) * top_fraction));
  double acc = 0.0;
  for (std::size_t i = 0; i < top; ++i) {
    acc += of_ranks[perm[n - 1 - i]] / static_cast<double>(n);
  }
  return acc / static_cast<double>(top);
}

}  // namespace

WorkloadShape workload_shape(const sched::JobTrace& trace) {
  WorkloadShape out;
  const auto& jobs = trace.jobs();
  if (jobs.empty()) return out;

  std::vector<double> core_hours;
  std::vector<double> node_counts;
  std::vector<double> walls;
  for (const auto& job : jobs) {
    core_hours.push_back(job.gpu_core_hours);
    node_counts.push_back(static_cast<double>(job.node_count()));
    walls.push_back(job.wall_hours());
  }
  out.corehours_vs_nodes = stats::spearman(core_hours, node_counts);
  out.top_memory_jobs_node_percentile =
      cross_percentile(jobs, JobField::kMaxMemory, JobField::kNodeCount, 0.01);
  out.top_memory_jobs_corehour_percentile =
      cross_percentile(jobs, JobField::kTotalMemory, JobField::kGpuCoreHours, 0.01);

  // Max wall among small (bottom quartile by nodes) vs large (top quartile).
  const auto perm = stats::sort_permutation(node_counts);
  const std::size_t q = jobs.size() / 4;
  double small_max = 0.0;
  double large_max = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double wall = walls[perm[i]];
    if (i < q) small_max = std::max(small_max, wall);
    if (i >= jobs.size() - q) large_max = std::max(large_max, wall);
  }
  out.small_vs_large_max_wall_ratio = large_max > 0.0 ? small_max / large_max : 0.0;
  return out;
}

}  // namespace titan::analysis
