// Cross-validation of console logs against nvidia-smi (Observations 1-2).
#pragma once

#include <cstdint>
#include <span>

#include "analysis/event_frame.hpp"
#include "analysis/events_view.hpp"
#include "logsim/smi.hpp"
#include "stats/reliability.hpp"

namespace titan::analysis {

struct SmiConsoleComparison {
  std::uint64_t console_dbe_count = 0;   ///< lines the SMW recorded
  std::uint64_t smi_dbe_count = 0;       ///< InfoROM aggregates (lossy)
  /// Cards whose smi counters show more DBEs than SBEs -- the logical
  /// inconsistency the paper flags ("the theoretical probability of a
  /// double bit error happening is lower than ... single bit error").
  std::uint64_t cards_dbe_exceeds_sbe = 0;
  std::uint64_t cards_with_dbe = 0;

  [[nodiscard]] double smi_undercount_fraction() const noexcept {
    if (console_dbe_count == 0) return 0.0;
    return 1.0 - static_cast<double>(smi_dbe_count) / static_cast<double>(console_dbe_count);
  }
};

[[nodiscard]] SmiConsoleComparison smi_console_comparison(
    std::span<const parse::ParsedEvent> events, const logsim::SmiSnapshot& snapshot);
/// Frame kernel: the console DBE count is an O(1) CSR lookup.
[[nodiscard]] SmiConsoleComparison smi_console_comparison(const EventFrame& frame,
                                                          const logsim::SmiSnapshot& snapshot);

/// Observation 1 framing: measured DBE MTBF vs the much more pessimistic
/// estimate a vendor datasheet FIT budget would give for this fleet.
struct MtbfReport {
  stats::MtbfEstimate measured;
  double datasheet_mtbf_hours = 0.0;
  double improvement_factor = 0.0;  ///< measured / datasheet
};

/// `datasheet_fleet_dbe_per_hour` is the vendor-budget fleet-wide DBE
/// rate; the default models a conservative per-card uncorrectable-error
/// FIT allocation that predicts roughly one fleet DBE per ~2 days.
[[nodiscard]] MtbfReport mtbf_report(std::span<const parse::ParsedEvent> events,
                                     stats::TimeSec begin, stats::TimeSec end,
                                     double datasheet_fleet_dbe_per_hour = 1.0 / 48.0);
[[nodiscard]] MtbfReport mtbf_report(const EventFrame& frame, stats::TimeSec begin,
                                     stats::TimeSec end,
                                     double datasheet_fleet_dbe_per_hour = 1.0 / 48.0);

}  // namespace titan::analysis
