#include "analysis/interruption.hpp"

#include <unordered_map>

namespace titan::analysis {

namespace {

[[nodiscard]] std::size_t size_class(std::size_t nodes) {
  std::size_t cls = 0;
  for (std::size_t i = 0; i < kSizeClassLowerBounds.size(); ++i) {
    if (nodes >= kSizeClassLowerBounds[i]) cls = i;
  }
  return cls;
}

/// Fold the per-job first-interruption map into the study totals; the
/// event scan (which differs between the span and frame paths) is done.
[[nodiscard]] InterruptionStudy accumulate_jobs(
    const std::unordered_map<xid::JobId, stats::TimeSec>& first_hit,
    std::size_t app_fatal_events, const sched::JobTrace& trace, stats::TimeSec begin,
    stats::TimeSec end) {
  InterruptionStudy out;
  for (const auto& job : trace.jobs()) {
    if (job.start < begin || job.start >= end) continue;
    ++out.total_jobs;
    const double node_hours = static_cast<double>(job.node_count()) * job.wall_hours();
    out.total_node_hours += node_hours;
    auto& cls = out.by_size[size_class(job.node_count())];
    ++cls.jobs;
    const auto hit = first_hit.find(job.id);
    if (hit == first_hit.end()) continue;
    ++out.interrupted_jobs;
    ++cls.interrupted;
    const double hours_in =
        static_cast<double>(hit->second - job.start) / static_cast<double>(stats::kSecondsPerHour);
    const double lost = static_cast<double>(job.node_count()) * hours_in;
    out.node_hours_lost += lost;
    cls.node_hours_lost += lost;
  }

  const double window_hours =
      static_cast<double>(end - begin) / static_cast<double>(stats::kSecondsPerHour);
  out.full_machine_mtti_hours =
      app_fatal_events > 0 ? window_hours / static_cast<double>(app_fatal_events) : 0.0;
  return out;
}

}  // namespace

InterruptionStudy interruption_study(std::span<const xid::Event> events,
                                     const sched::JobTrace& trace, stats::TimeSec begin,
                                     stats::TimeSec end) {
  // Forwarding adapter: the frame build keeps the job/root columns the
  // kernel's first-interruption-per-job rule needs (SBEs are dropped, but
  // they never crash an application, so the scan is unaffected).
  return interruption_study(EventFrame::build(events), trace, begin, end);
}

InterruptionStudy interruption_study(const EventFrame& frame, const sched::JobTrace& trace,
                                     stats::TimeSec begin, stats::TimeSec end) {
  // crashes_app is kind metadata shared by every fleet, and the frame only
  // holds kinds the active profile generated, so the full table is safe.
  std::array<bool, xid::kErrorKindCount> crashes{};
  for (const auto& info : xid::all_errors()) {  // titanlint: allow(profile-hygiene)
    crashes[static_cast<std::size_t>(info.kind)] = info.crashes_app;
  }

  const auto times = frame.times();
  const auto kinds = frame.kinds();
  const auto jobs = frame.jobs();
  const auto roots = frame.roots();
  std::unordered_map<xid::JobId, stats::TimeSec> first_hit;
  std::size_t app_fatal_events = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (times[i] < begin || times[i] >= end) continue;
    if (!crashes[static_cast<std::size_t>(kinds[i])]) continue;
    if (roots[i] == 0) continue;
    ++app_fatal_events;
    if (jobs[i] == xid::kNoJob) continue;
    first_hit.emplace(jobs[i], times[i]);
  }
  return accumulate_jobs(first_hit, app_fatal_events, trace, begin, end);
}

}  // namespace titan::analysis
