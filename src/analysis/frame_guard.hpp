// Runtime counterpart of titanlint's static capability cross-check.
//
// Registry kernels declare the StudyContext capabilities they read;
// titanlint proves the declaration against the kernel's source.  The
// frame guard closes the loop at runtime: while a FrameGuardScope is
// active on a thread, every EventFrame column accessor checks that its
// column group is in the scope's allowed mask, so a kernel that reaches a
// column its capability mask never declared trips the guard on the very
// first read -- before a wrong join can leak into a study report.
//
// The study layer installs one scope per kernel invocation (translating
// the registry capability mask into column bits); outside any scope
// everything is allowed, so ad-hoc frame users pay one thread-local test
// per accessor call and nothing else.  Set TITANREL_FRAME_GUARD=0 to
// skip scope installation entirely.  On violation the installed handler
// runs: the default prints the offending column and aborts (a debug
// assertion, not a recoverable error); tests install a recording handler.
#pragma once

namespace titan::analysis {

/// Column groups of an EventFrame, as guard bits.
enum FrameColumn : unsigned {
  /// time/node/kind/structure, the derived location/month columns and the
  /// per-kind CSR index -- present in every frame (capability kEvents, or
  /// kGroundTruth for the truth frame).
  kColumnBase = 1U << 0,
  /// Ledger-joined card serials (capability kLedger).
  kColumnCards = 1U << 1,
  /// Job ids and root flags (ground-truth builds; capability kGroundTruth).
  kColumnJobs = 1U << 2,

  kColumnAll = kColumnBase | kColumnCards | kColumnJobs,
};

namespace frame_guard {

/// Thread-local allowed-column mask; ~0U (everything) outside any scope.
inline thread_local unsigned tl_allowed = ~0U;

/// Violation handler: receives the offending column bit and the active
/// mask.  Must be noexcept; a handler that returns lets the access
/// proceed (used by tests to record instead of die).
using Handler = void (*)(unsigned column, unsigned allowed) noexcept;

/// Install a handler, returning the previous one.  The default prints
/// the column name to stderr and aborts.
Handler set_handler(Handler handler) noexcept;

/// True unless the environment says TITANREL_FRAME_GUARD=0 (read once).
[[nodiscard]] bool enabled() noexcept;

/// Human-readable name of a single column bit.
[[nodiscard]] const char* column_name(unsigned column) noexcept;

/// Out-of-line slow path: dispatch to the installed handler.
void violation(unsigned column) noexcept;

/// The accessor-side check: one thread-local load and a branch.
inline void check(unsigned column) noexcept {
  if ((tl_allowed & column) == 0U) violation(column);
}

}  // namespace frame_guard

/// RAII: restrict this thread's EventFrame column accesses to `allowed`
/// for the scope's lifetime.  Nests (inner scopes shadow, destructors
/// restore), and is what AnalysisRegistry::run wraps around each kernel.
class FrameGuardScope {
 public:
  explicit FrameGuardScope(unsigned allowed) noexcept
      : previous_{frame_guard::tl_allowed} {
    frame_guard::tl_allowed = allowed;
  }
  ~FrameGuardScope() { frame_guard::tl_allowed = previous_; }

  FrameGuardScope(const FrameGuardScope&) = delete;
  FrameGuardScope& operator=(const FrameGuardScope&) = delete;

 private:
  unsigned previous_;
};

}  // namespace titan::analysis
