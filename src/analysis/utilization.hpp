// Section 4: correlation between GPU resource utilization and SBE counts
// (Figs. 16-20, Observations 11-13).
//
// Inputs are the per-job SBE records from the before/after nvidia-smi
// framework plus the job log.  Every correlation is computed twice: over
// all jobs, and excluding jobs that used any of the top-10 SBE offender
// cards -- the paper's robustness check.
#pragma once

#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "logsim/smi.hpp"
#include "sched/job.hpp"
#include "stats/correlation.hpp"

namespace titan::analysis {

/// Which job metric a figure correlates against SBEs.
enum class JobMetric : std::uint8_t {
  kMaxMemory,    ///< Fig. 16
  kTotalMemory,  ///< Fig. 17
  kNodeCount,    ///< Fig. 18
  kGpuCoreHours, ///< Fig. 19
};

[[nodiscard]] std::string_view metric_name(JobMetric metric) noexcept;
[[nodiscard]] double metric_value(const sched::JobRecord& job, JobMetric metric) noexcept;

/// Correlations for one metric, all-jobs and offenders-excluded.
struct MetricCorrelation {
  JobMetric metric{};
  stats::Correlation spearman_all;
  stats::Correlation pearson_all;
  stats::Correlation spearman_excl;   ///< excluding top-10 offender jobs
  stats::Correlation pearson_excl;
  std::size_t jobs_all = 0;
  std::size_t jobs_excl = 0;
};

/// The full Section 4 study over a measurement window.
struct UtilizationStudy {
  std::vector<logsim::JobSbeRecord> job_sbe;  ///< window jobs, trace order
  std::vector<MetricCorrelation> metrics;     ///< one per JobMetric
  /// Fig. 20: per-user aggregation of core-hours vs SBEs.
  stats::Correlation user_spearman_all;
  stats::Correlation user_spearman_excl;
  std::size_t users_all = 0;
  std::size_t users_excl = 0;
  std::vector<xid::CardId> top10_offenders;
};

/// `strikes` is the full campaign strike stream; offender ranking uses
/// whole-campaign totals (what the operations team knows), while job SBE
/// deltas come only from the [window_begin, window_end) framework data.
[[nodiscard]] UtilizationStudy utilization_study(const sched::JobTrace& trace,
                                                 const std::vector<fault::SbeStrike>& strikes,
                                                 stats::TimeSec window_begin,
                                                 stats::TimeSec window_end);

/// The paper's rendering for Figs. 16-19: jobs sorted by a metric, both
/// series normalized to their own mean, then bucketed for display.
struct SortedSeriesBins {
  std::vector<double> metric_mean;  ///< per-bin mean of normalized metric
  std::vector<double> sbe_mean;     ///< per-bin mean of normalized SBE count
};

[[nodiscard]] SortedSeriesBins sorted_series_bins(const sched::JobTrace& trace,
                                                  const std::vector<logsim::JobSbeRecord>& jobs,
                                                  JobMetric metric, std::size_t bins);

}  // namespace titan::analysis
