// Descriptive statistics helpers shared by all analyses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace titan::stats {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< sample variance (n-1)
[[nodiscard]] double stddev(std::span<const double> xs);
/// p in [0,1]; linear interpolation between order statistics.  Empty input
/// returns 0.
[[nodiscard]] double percentile(std::vector<double> xs, double p);
[[nodiscard]] double median(std::vector<double> xs);

/// Divide every element by the mean of the series (the normalization used
/// in the paper's Figs. 16-19: "values have been normalized to average
/// value of the respective metrics").  A zero-mean series is returned
/// unchanged.
[[nodiscard]] std::vector<double> normalize_to_mean(std::span<const double> xs);

/// Average ranks (1-based) with ties sharing the average of their span --
/// the ranking used by the Spearman coefficient.
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> xs);

/// Indices that would sort `keys` ascending (stable).
[[nodiscard]] std::vector<std::size_t> sort_permutation(std::span<const double> keys);

/// Apply a permutation: out[i] = xs[perm[i]].
[[nodiscard]] std::vector<double> apply_permutation(std::span<const double> xs,
                                                    std::span<const std::size_t> perm);

}  // namespace titan::stats
