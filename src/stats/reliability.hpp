// MTBF and inter-arrival statistics (Observation 1 and Fig. 8 analysis).
#pragma once

#include <span>
#include <vector>

#include "stats/calendar.hpp"

namespace titan::stats {

/// Mean time between failures over an observation window, plus the raw
/// inter-arrival sample the estimate was made from.
struct MtbfEstimate {
  double mtbf_hours = 0.0;         ///< window_hours / event_count (0 if no events)
  double mean_gap_hours = 0.0;     ///< mean of inter-arrival gaps (0 if < 2 events)
  double median_gap_hours = 0.0;   ///< median of inter-arrival gaps
  std::size_t event_count = 0;
  double window_hours = 0.0;
};

/// Estimate MTBF of a sorted event-time sequence over [begin, end).
/// `events` need not be sorted; a copy is sorted internally.
[[nodiscard]] MtbfEstimate estimate_mtbf(std::vector<TimeSec> events, TimeSec begin, TimeSec end);

/// Inter-arrival gaps (seconds) of a sorted copy of `events`.
[[nodiscard]] std::vector<double> inter_arrival_seconds(std::vector<TimeSec> events);

/// Per-month event counts between `begin` and `end` (month of `begin` is
/// index 0).  Events outside the window are ignored.
struct MonthlySeries {
  TimeSec origin = 0;                 ///< start of month 0
  std::vector<std::uint64_t> counts;  ///< one entry per month in the window

  [[nodiscard]] std::uint64_t total() const noexcept;
  /// x-axis labels ("Jun'13", ...).
  [[nodiscard]] std::vector<std::string> labels() const;
};

[[nodiscard]] MonthlySeries monthly_counts(std::span<const TimeSec> events, TimeSec begin,
                                           TimeSec end);

}  // namespace titan::stats
