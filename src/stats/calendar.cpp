#include "stats/calendar.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace titan::stats {

namespace {
constexpr std::array<const char*, 12> kMonthNames = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                                     "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

// Parses exactly `width` digits starting at `pos`, advancing `pos`.
bool parse_digits(std::string_view text, std::size_t& pos, int width, int& out) {
  if (pos + static_cast<std::size_t>(width) > text.size()) return false;
  int value = 0;
  for (int i = 0; i < width; ++i) {
    const char c = text[pos + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  pos += static_cast<std::size_t>(width);
  out = value;
  return true;
}

bool expect(std::string_view text, std::size_t& pos, char c) {
  if (pos >= text.size() || text[pos] != c) return false;
  ++pos;
  return true;
}
}  // namespace

std::string month_label(TimeSec t) {
  const CivilDate d = to_civil(t).date;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s'%02d", kMonthNames[static_cast<std::size_t>(d.month - 1)],
                d.year % 100);
  return buf;
}

void append_timestamp(std::string& out, TimeSec t) {
  const CivilDateTime dt = to_civil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year, dt.date.month,
                dt.date.day, dt.hour, dt.minute, dt.second);
  out += buf;
}

std::string format_timestamp(TimeSec t) {
  std::string out;
  append_timestamp(out, t);
  return out;
}

bool parse_timestamp(std::string_view text, TimeSec& out) {
  std::size_t pos = 0;
  CivilDateTime dt;
  if (!parse_digits(text, pos, 4, dt.date.year)) return false;
  if (!expect(text, pos, '-')) return false;
  if (!parse_digits(text, pos, 2, dt.date.month)) return false;
  if (!expect(text, pos, '-')) return false;
  if (!parse_digits(text, pos, 2, dt.date.day)) return false;
  if (!expect(text, pos, ' ')) return false;
  if (!parse_digits(text, pos, 2, dt.hour)) return false;
  if (!expect(text, pos, ':')) return false;
  if (!parse_digits(text, pos, 2, dt.minute)) return false;
  if (!expect(text, pos, ':')) return false;
  if (!parse_digits(text, pos, 2, dt.second)) return false;
  if (pos != text.size()) return false;
  if (dt.date.month < 1 || dt.date.month > 12 || dt.date.day < 1 || dt.date.day > 31 ||
      dt.hour > 23 || dt.minute > 59 || dt.second > 60) {
    return false;
  }
  out = to_time(dt);
  return true;
}

}  // namespace titan::stats
