// Temporal-locality statistics for failure streams.
//
// The paper's companion work (lazy checkpointing, DSN'14 [32]) exploits
// the fact that real failures cluster in time: right after a failure the
// hazard of another is elevated, so checkpointing lazily right after one
// is safe.  These estimators quantify that property for any event stream:
//
//  * index of dispersion of windowed counts (1 for Poisson, > 1 bursty),
//  * conditional intensity ratio: rate of a follow-up event within W of
//    an event, relative to the stream's unconditional rate,
//  * Kolmogorov-Smirnov distance of the inter-arrival distribution from
//    the fitted exponential.
#pragma once

#include <span>
#include <vector>

#include "stats/calendar.hpp"

namespace titan::stats {

/// Variance/mean of event counts in fixed windows over [begin, end).
/// Returns 0 when there are no events or no complete windows.
[[nodiscard]] double dispersion_of_counts(std::span<const TimeSec> times, TimeSec begin,
                                          TimeSec end, TimeSec window);

/// P(another event within `window` after an event) divided by the same
/// probability for a Poisson process of equal mean rate.  > 1 indicates
/// temporal locality.  `times` must be sorted; requires >= 2 events.
[[nodiscard]] double conditional_intensity_ratio(std::span<const TimeSec> times, TimeSec begin,
                                                 TimeSec end, TimeSec window);

/// Two-sided Kolmogorov-Smirnov statistic between the inter-arrival
/// sample and the exponential fitted to its mean (0 = perfect fit).
[[nodiscard]] double ks_vs_exponential(std::span<const double> gaps);

}  // namespace titan::stats
