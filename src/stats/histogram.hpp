// Histogram utilities: fixed-width 1-D bins, explicit-edge bins (Fig. 8's
// irregular delay buckets), and dense 2-D count grids (spatial heatmaps).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace titan::stats {

/// 1-D histogram over explicit, strictly increasing bin edges.
/// A value v falls in bin i when edges[i] <= v < edges[i+1]; values outside
/// [edges.front(), edges.back()) are counted in underflow/overflow.
class EdgeHistogram {
 public:
  explicit EdgeHistogram(std::vector<double> edges);

  void add(double value, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::span<const double> edges() const noexcept { return edges_; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept { return counts_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Dense 2-D grid of counts, used for the row x column cabinet heatmaps.
class Grid2D {
 public:
  Grid2D(std::size_t rows, std::size_t cols) : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {
    if (rows == 0 || cols == 0) throw std::invalid_argument{"Grid2D: empty grid"};
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_.at(index(r, c)); }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_.at(index(r, c)); }
  void add(std::size_t r, std::size_t c, double w = 1.0) { data_.at(index(r, c)) += w; }

  [[nodiscard]] double total() const noexcept;
  [[nodiscard]] double max_value() const noexcept;
  /// Coefficient of variation of the cell values (stddev/mean); the
  /// skewness proxy used when the paper says a spatial distribution
  /// "becomes relatively homogeneous".
  [[nodiscard]] double coefficient_of_variation() const noexcept;

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

 private:
  [[nodiscard]] std::size_t index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range{"Grid2D: index out of range"};
    return r * cols_ + c;
  }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace titan::stats
