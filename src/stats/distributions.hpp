// Sampling routines used by the fault and workload generators.
//
// Deliberately self-contained (no <random> distribution objects): the
// sequences must be identical across standard libraries so that the figure
// reproductions are portable-deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace titan::stats {

/// Exponential variate with the given rate (events per unit time).
[[nodiscard]] double sample_exponential(Rng& rng, double rate);

/// Standard normal variate (polar Marsaglia method).
[[nodiscard]] double sample_normal(Rng& rng);

/// Normal variate with mean/stddev.
[[nodiscard]] double sample_normal(Rng& rng, double mean, double stddev);

/// Log-normal variate: exp(N(mu, sigma)).  Heavy-tailed card propensities
/// and job durations use this.
[[nodiscard]] double sample_lognormal(Rng& rng, double mu, double sigma);

/// Poisson variate with the given mean.  Inversion for small means,
/// PTRD-style rejection for large means; exact for mean == 0.
[[nodiscard]] std::uint64_t sample_poisson(Rng& rng, double mean);

/// Pareto (type I) variate with scale xm > 0 and shape alpha > 0.
[[nodiscard]] double sample_pareto(Rng& rng, double xm, double alpha);

/// Zipf-distributed rank in [0, n) with exponent s >= 0 (s == 0 is uniform).
/// Used for the user-activity population (a few users dominate GPU hours).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, back() == 1.0
};

/// Weighted discrete sampler over arbitrary non-negative weights
/// (linear-time build, log-time sample via binary search on the CDF).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double total_weight() const noexcept { return total_; }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

/// Homogeneous Poisson process: event times in [begin, end) at `rate`
/// events per unit time.  Times are sorted.
[[nodiscard]] std::vector<double> sample_poisson_process(Rng& rng, double rate, double begin,
                                                         double end);

/// Two-state Markov-modulated Poisson process (MMPP-2).
///
/// Models the paper's "bursty" user-application XID arrivals (Observation 6):
/// the process alternates between a quiet state (rate_quiet) and a burst
/// state (rate_burst), with exponentially distributed sojourn times.  Burst
/// weeks correspond to deadline crunches in the paper's narrative.
struct Mmpp2Params {
  double rate_quiet = 0.0;       ///< events per unit time in the quiet state
  double rate_burst = 0.0;       ///< events per unit time in the burst state
  double mean_quiet_sojourn = 1.0;  ///< mean time spent quiet
  double mean_burst_sojourn = 1.0;  ///< mean time spent bursting
};

[[nodiscard]] std::vector<double> sample_mmpp2(Rng& rng, const Mmpp2Params& params, double begin,
                                               double end);

/// Non-homogeneous Poisson process by thinning against a piecewise-constant
/// envelope.  `rate_at` must return a rate <= `rate_max` everywhere.
template <typename RateFn>
[[nodiscard]] std::vector<double> sample_nhpp(Rng& rng, RateFn&& rate_at, double rate_max,
                                              double begin, double end) {
  std::vector<double> out;
  if (rate_max <= 0.0 || end <= begin) return out;
  double t = begin;
  while (true) {
    t += sample_exponential(rng, rate_max);
    if (t >= end) break;
    if (rng.uniform() * rate_max < rate_at(t)) out.push_back(t);
  }
  return out;
}

}  // namespace titan::stats
