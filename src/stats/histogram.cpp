#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.hpp"

namespace titan::stats {

EdgeHistogram::EdgeHistogram(std::vector<double> edges) : edges_{std::move(edges)} {
  if (edges_.size() < 2) throw std::invalid_argument{"EdgeHistogram: need at least 2 edges"};
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument{"EdgeHistogram: edges must be strictly increasing"};
  }
  counts_.assign(edges_.size() - 1, 0);
}

void EdgeHistogram::add(double value, std::uint64_t weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (value >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
}

std::uint64_t EdgeHistogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0}) + underflow_ +
         overflow_;
}

double Grid2D::total() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Grid2D::max_value() const noexcept {
  return *std::max_element(data_.begin(), data_.end());
}

double Grid2D::coefficient_of_variation() const noexcept {
  const double m = mean(data_);
  if (m == 0.0) return 0.0;
  return stddev(data_) / m;
}

}  // namespace titan::stats
