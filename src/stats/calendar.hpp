// Civil-calendar arithmetic for the study period.
//
// All timestamps in titanrel are UTC seconds since the Unix epoch
// (`TimeSec`).  The analyses in the paper bucket events by calendar month
// (Jun'2013 .. Feb'2015), so we need exact civil-date math; the algorithms
// here are the public-domain days-from-civil/civil-from-days routines
// (Howard Hinnant), valid far beyond the study period.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace titan::stats {

/// UTC seconds since the Unix epoch.
using TimeSec = std::int64_t;

inline constexpr TimeSec kSecondsPerMinute = 60;
inline constexpr TimeSec kSecondsPerHour = 3600;
inline constexpr TimeSec kSecondsPerDay = 86400;

/// A civil (proleptic Gregorian, UTC) date.
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// A civil date-time, second resolution.
struct CivilDateTime {
  CivilDate date;
  int hour = 0;
  int minute = 0;
  int second = 0;

  friend constexpr auto operator<=>(const CivilDateTime&, const CivilDateTime&) = default;
};

/// Days since the Unix epoch for a civil date.
[[nodiscard]] constexpr std::int64_t days_from_civil(const CivilDate& d) noexcept {
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (d.month + (d.month > 2 ? -3 : 9)) + 2) / 5 + d.day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
[[nodiscard]] constexpr CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{static_cast<int>(y + (m <= 2 ? 1 : 0)), static_cast<int>(m),
                   static_cast<int>(d)};
}

/// TimeSec for a civil date-time (UTC).
[[nodiscard]] constexpr TimeSec to_time(const CivilDateTime& dt) noexcept {
  return days_from_civil(dt.date) * kSecondsPerDay + dt.hour * kSecondsPerHour +
         dt.minute * kSecondsPerMinute + dt.second;
}

/// TimeSec for midnight (UTC) of a civil date.
[[nodiscard]] constexpr TimeSec to_time(const CivilDate& d) noexcept {
  return to_time(CivilDateTime{d, 0, 0, 0});
}

/// Civil date-time for a TimeSec (UTC).
[[nodiscard]] constexpr CivilDateTime to_civil(TimeSec t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  CivilDateTime out;
  out.date = civil_from_days(days);
  out.hour = static_cast<int>(rem / kSecondsPerHour);
  out.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  out.second = static_cast<int>(rem % kSecondsPerMinute);
  return out;
}

/// Zero-based month index since year 0 (for month arithmetic).
[[nodiscard]] constexpr int month_ordinal(const CivilDate& d) noexcept {
  return d.year * 12 + (d.month - 1);
}

/// Month index of `t` relative to the month containing `origin` (0 = same
/// month).  Used for "monthly frequency" figures.
[[nodiscard]] constexpr int month_index(TimeSec t, TimeSec origin) noexcept {
  return month_ordinal(to_civil(t).date) - month_ordinal(to_civil(origin).date);
}

/// First instant of the month that is `offset` months after the month
/// containing `origin`.
[[nodiscard]] constexpr TimeSec month_start(TimeSec origin, int offset) noexcept {
  const int ord = month_ordinal(to_civil(origin).date) + offset;
  const int year = (ord >= 0 ? ord : ord - 11) / 12;
  const int month = ord - year * 12 + 1;
  return to_time(CivilDate{year, month, 1});
}

/// Number of days in the month containing `t`.
[[nodiscard]] constexpr int days_in_month(TimeSec t) noexcept {
  return static_cast<int>((month_start(t, 1) - month_start(t, 0)) / kSecondsPerDay);
}

/// "Jun'13"-style month label, as used on the paper's x axes.
[[nodiscard]] std::string month_label(TimeSec t);

/// "2014-01-12 13:45:01" timestamp string (console-log format).
[[nodiscard]] std::string format_timestamp(TimeSec t);
/// Same format, appended to `out` (no temporary string).
void append_timestamp(std::string& out, TimeSec t);

/// Parse a "YYYY-MM-DD HH:MM:SS" timestamp.  Returns false on malformed
/// input (without touching `out`).
[[nodiscard]] bool parse_timestamp(std::string_view text, TimeSec& out);

/// The study period covered by the paper: Jun'2013 .. Feb'2015 (inclusive).
struct StudyPeriod {
  TimeSec begin = to_time(CivilDate{2013, 6, 1});
  TimeSec end = to_time(CivilDate{2015, 3, 1});  ///< exclusive

  [[nodiscard]] constexpr TimeSec duration() const noexcept { return end - begin; }
  [[nodiscard]] constexpr double hours() const noexcept {
    return static_cast<double>(duration()) / static_cast<double>(kSecondsPerHour);
  }
  [[nodiscard]] constexpr int months() const noexcept {
    return month_ordinal(to_civil(end - 1).date) - month_ordinal(to_civil(begin).date) + 1;
  }
  [[nodiscard]] constexpr bool contains(TimeSec t) const noexcept {
    return t >= begin && t < end;
  }
};

}  // namespace titan::stats
