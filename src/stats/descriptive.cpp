#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace titan::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

std::vector<double> normalize_to_mean(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  const double m = mean(xs);
  if (m != 0.0) {
    for (auto& x : out) x /= m;
  }
  return out;
}

std::vector<std::size_t> sort_permutation(std::span<const double> keys) {
  std::vector<std::size_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  return perm;
}

std::vector<double> apply_permutation(std::span<const double> xs,
                                      std::span<const std::size_t> perm) {
  std::vector<double> out;
  out.reserve(perm.size());
  for (std::size_t i : perm) out.push_back(xs[i]);
  return out;
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<double> ranks(n, 0.0);
  const auto perm = sort_permutation(xs);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[perm[j + 1]] == xs[perm[i]]) ++j;
    // Elements perm[i..j] are tied; each gets the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[perm[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace titan::stats
