#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace titan::stats {

double sample_exponential(Rng& rng, double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"sample_exponential: rate must be > 0"};
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.uniform()) / rate;
}

double sample_normal(Rng& rng) {
  // Polar (Marsaglia) method; one of the pair is discarded so that the
  // number of variates consumed per call is data-independent only in
  // expectation -- acceptable because all streams are forked per consumer.
  while (true) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Rng& rng, double mean, double stddev) {
  return mean + stddev * sample_normal(rng);
}

double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

std::uint64_t sample_poisson(Rng& rng, double mean) {
  if (mean < 0.0) throw std::invalid_argument{"sample_poisson: mean must be >= 0"};
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion by multiplication.
    const double limit = std::exp(-mean);
    double product = rng.uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= rng.uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction, rejecting negatives.
  // For the event counts used in this framework (mean up to ~1e5), the
  // relative error of this approximation is far below the stochastic noise
  // of the study itself.
  while (true) {
    const double x = sample_normal(rng, mean, std::sqrt(mean));
    if (x >= -0.5) return static_cast<std::uint64_t>(std::llround(std::max(0.0, x)));
  }
}

double sample_pareto(Rng& rng, double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) throw std::invalid_argument{"sample_pareto: bad parameters"};
  return xm / std::pow(1.0 - rng.uniform(), 1.0 / alpha);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be > 0"};
  if (s < 0.0) throw std::invalid_argument{"ZipfSampler: s must be >= 0"};
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"DiscreteSampler: no weights"};
  cdf_.reserve(weights.size());
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"DiscreteSampler: negative weight"};
    total_ += w;
    cdf_.push_back(total_);
  }
  if (total_ <= 0.0) throw std::invalid_argument{"DiscreteSampler: all weights zero"};
}

std::size_t DiscreteSampler::operator()(Rng& rng) const {
  const double u = rng.uniform() * total_;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(idx, cdf_.size() - 1);
}

std::vector<double> sample_poisson_process(Rng& rng, double rate, double begin, double end) {
  std::vector<double> out;
  if (rate <= 0.0 || end <= begin) return out;
  out.reserve(static_cast<std::size_t>(rate * (end - begin) * 1.2) + 4);
  double t = begin;
  while (true) {
    t += sample_exponential(rng, rate);
    if (t >= end) break;
    out.push_back(t);
  }
  return out;
}

std::vector<double> sample_mmpp2(Rng& rng, const Mmpp2Params& params, double begin, double end) {
  std::vector<double> out;
  if (end <= begin) return out;
  if (params.mean_quiet_sojourn <= 0.0 || params.mean_burst_sojourn <= 0.0) {
    throw std::invalid_argument{"sample_mmpp2: sojourn means must be > 0"};
  }
  // Start in the quiet state with the stationary phase randomized by an
  // initial exponential residual.
  bool bursting = rng.bernoulli(params.mean_burst_sojourn /
                                (params.mean_burst_sojourn + params.mean_quiet_sojourn));
  double t = begin;
  while (t < end) {
    const double sojourn = sample_exponential(
        rng, 1.0 / (bursting ? params.mean_burst_sojourn : params.mean_quiet_sojourn));
    const double seg_end = std::min(end, t + sojourn);
    const double rate = bursting ? params.rate_burst : params.rate_quiet;
    auto seg = sample_poisson_process(rng, rate, t, seg_end);
    out.insert(out.end(), seg.begin(), seg.end());
    t = seg_end;
    bursting = !bursting;
  }
  return out;
}

}  // namespace titan::stats
