// Top-k offender selection, used throughout Sections 3.3 and 4 where the
// paper re-runs analyses "excluding the top 10 / top 50 SBE offending
// cards".
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace titan::stats {

/// Return the keys of the k largest values (ties broken by smaller key for
/// determinism).  k may exceed the map size.
template <typename Key>
[[nodiscard]] std::vector<Key> top_k_keys(const std::unordered_map<Key, std::uint64_t>& counts,
                                          std::size_t k) {
  std::vector<std::pair<Key, std::uint64_t>> items(counts.begin(), counts.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<Key> out;
  out.reserve(std::min(k, items.size()));
  for (std::size_t i = 0; i < items.size() && i < k; ++i) out.push_back(items[i].first);
  return out;
}

/// Set view of top_k_keys for O(1) exclusion checks.
template <typename Key>
[[nodiscard]] std::unordered_set<Key> top_k_set(const std::unordered_map<Key, std::uint64_t>& counts,
                                                std::size_t k) {
  const auto keys = top_k_keys(counts, k);
  return std::unordered_set<Key>(keys.begin(), keys.end());
}

}  // namespace titan::stats
