// Nonparametric bootstrap confidence intervals.
//
// A 21-month window yields fewer than a hundred DBEs, so point MTBF
// estimates deserve error bars; the percentile bootstrap provides them
// without distributional assumptions (the inter-arrival data is NOT
// exponential for every family -- see stats/hazard.hpp).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace titan::stats {

struct ConfidenceInterval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;

  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= lower && value <= upper;
  }
};

/// Percentile-bootstrap CI for `statistic` over `sample`.
/// `level` is the two-sided coverage (e.g. 0.95); `resamples` the number
/// of bootstrap replicates.  Empty samples yield a degenerate {0,0,0}.
[[nodiscard]] ConfidenceInterval bootstrap_ci(
    std::span<const double> sample, const std::function<double(std::span<const double>)>& statistic,
    double level, std::size_t resamples, Rng rng);

/// Convenience: CI of the sample mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                                   double level = 0.95,
                                                   std::size_t resamples = 2000,
                                                   Rng rng = Rng{0x9e3779b9});

}  // namespace titan::stats
