// Deterministic random number generation for the whole framework.
//
// Every stochastic component in titanrel draws from an Rng that is derived,
// via SplitMix64 stream splitting, from a single campaign seed.  This makes
// every figure reproduction bit-reproducible across runs and platforms
// (no std::random_device, no distribution objects from <random> whose
// sequences are implementation-defined).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace titan::stats {

/// SplitMix64 step: the canonical 64-bit finalizer-based generator.
/// Used both as a seeding primitive and for stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over a label, used to derive named sub-streams so that adding a
/// new consumer of randomness never perturbs the draws of existing ones.
[[nodiscard]] constexpr std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** 1.0 (Blackman & Vigna).  Small, fast, and with known-good
/// statistical properties; state is seeded through SplitMix64 so that
/// low-entropy seeds (0, 1, 2, ...) still yield well-mixed streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a raw 64-bit seed.
  explicit constexpr Rng(std::uint64_t seed) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent named sub-stream.  The child stream's sequence
  /// depends only on (parent seed, label), never on how many draws the
  /// parent has made -- call order between siblings cannot matter.
  [[nodiscard]] constexpr Rng fork(std::string_view label) const noexcept {
    std::uint64_t mix = seed_;
    mix = splitmix64(mix) ^ hash_label(label);
    return Rng{mix};
  }

  /// Derive an independent indexed sub-stream (e.g. one per GPU card).
  [[nodiscard]] constexpr Rng fork(std::string_view label, std::uint64_t index) const noexcept {
    std::uint64_t mix = seed_;
    mix = splitmix64(mix) ^ hash_label(label);
    mix ^= index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
    return Rng{mix};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound).  Lemire's nearly-divisionless method.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;  ///< construction seed, the fork() base
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace titan::stats
