#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "par/parallel.hpp"
#include "stats/descriptive.hpp"

namespace titan::stats {

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const std::function<double(std::span<const double>)>& statistic,
                                double level, std::size_t resamples, Rng rng) {
  if (level <= 0.0 || level >= 1.0) throw std::invalid_argument{"bootstrap_ci: level in (0,1)"};
  if (resamples < 10) throw std::invalid_argument{"bootstrap_ci: need >= 10 resamples"};
  ConfidenceInterval ci;
  if (sample.empty()) return ci;
  ci.point = statistic(sample);

  // Each replicate resamples from its own indexed fork, so replicates are
  // independent of one another and of execution order: the interval is
  // identical at any thread count.
  std::vector<double> stats_out(resamples);
  par::parallel_for(0, resamples, 16, [&](std::size_t r) {
    auto replicate_rng = rng.fork("replicate", r);
    std::vector<double> replicate(sample.size());
    for (auto& value : replicate) {
      value = sample[replicate_rng.below(sample.size())];
    }
    stats_out[r] = statistic(replicate);
  });
  std::sort(stats_out.begin(), stats_out.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto pick = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(stats_out.size() - 1) + 0.5);
    return stats_out[std::min(idx, stats_out.size() - 1)];
  };
  ci.lower = pick(alpha);
  ci.upper = pick(1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, double level,
                                     std::size_t resamples, Rng rng) {
  return bootstrap_ci(sample, [](std::span<const double> xs) { return mean(xs); }, level,
                      resamples, rng);
}

}  // namespace titan::stats
