#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace titan::stats {

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const std::function<double(std::span<const double>)>& statistic,
                                double level, std::size_t resamples, Rng rng) {
  if (level <= 0.0 || level >= 1.0) throw std::invalid_argument{"bootstrap_ci: level in (0,1)"};
  if (resamples < 10) throw std::invalid_argument{"bootstrap_ci: need >= 10 resamples"};
  ConfidenceInterval ci;
  if (sample.empty()) return ci;
  ci.point = statistic(sample);

  std::vector<double> replicate(sample.size());
  std::vector<double> stats_out;
  stats_out.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& value : replicate) {
      value = sample[rng.below(sample.size())];
    }
    stats_out.push_back(statistic(replicate));
  }
  std::sort(stats_out.begin(), stats_out.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto pick = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(stats_out.size() - 1) + 0.5);
    return stats_out[std::min(idx, stats_out.size() - 1)];
  };
  ci.lower = pick(alpha);
  ci.upper = pick(1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, double level,
                                     std::size_t resamples, Rng rng) {
  return bootstrap_ci(sample, [](std::span<const double> xs) { return mean(xs); }, level,
                      resamples, rng);
}

}  // namespace titan::stats
