// Pearson and Spearman correlation with significance, as used throughout
// Section 4 of the paper ("both the Spearman and Pearson coefficient were
// less than 0.50 with p-value < 0.05").
#pragma once

#include <span>

namespace titan::stats {

/// A correlation estimate plus its two-sided significance.
struct Correlation {
  double coefficient = 0.0;  ///< in [-1, 1]; 0 when undefined (n < 2 or zero variance)
  double p_value = 1.0;      ///< two-sided, t-approximation; 1 when undefined
  std::size_t n = 0;         ///< number of paired observations

  [[nodiscard]] bool significant(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// Pearson product-moment correlation of paired samples.
[[nodiscard]] Correlation pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (tie-aware: Pearson over average ranks).
[[nodiscard]] Correlation spearman(std::span<const double> x, std::span<const double> y);

/// Two-sided p-value for a correlation coefficient r over n pairs, using
/// the exact t-statistic t = r*sqrt((n-2)/(1-r^2)) and a numeric
/// Student-t CDF (regularized incomplete beta via continued fractions).
[[nodiscard]] double correlation_p_value(double r, std::size_t n);

/// Regularized incomplete beta function I_x(a, b) (Lentz continued
/// fraction).  Exposed for testing; domain x in [0,1], a, b > 0.
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

/// Student-t distribution: P(T <= t) with `dof` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double dof);

}  // namespace titan::stats
