#include "stats/reliability.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace titan::stats {

MtbfEstimate estimate_mtbf(std::vector<TimeSec> events, TimeSec begin, TimeSec end) {
  if (end <= begin) throw std::invalid_argument{"estimate_mtbf: empty window"};
  std::erase_if(events, [&](TimeSec t) { return t < begin || t >= end; });
  std::sort(events.begin(), events.end());

  MtbfEstimate out;
  out.event_count = events.size();
  out.window_hours = static_cast<double>(end - begin) / static_cast<double>(kSecondsPerHour);
  if (!events.empty()) {
    out.mtbf_hours = out.window_hours / static_cast<double>(events.size());
  }
  if (events.size() >= 2) {
    std::vector<double> gaps;
    gaps.reserve(events.size() - 1);
    for (std::size_t i = 1; i < events.size(); ++i) {
      gaps.push_back(static_cast<double>(events[i] - events[i - 1]) /
                     static_cast<double>(kSecondsPerHour));
    }
    out.mean_gap_hours = mean(gaps);
    out.median_gap_hours = median(gaps);
  }
  return out;
}

std::vector<double> inter_arrival_seconds(std::vector<TimeSec> events) {
  std::sort(events.begin(), events.end());
  std::vector<double> gaps;
  if (events.size() < 2) return gaps;
  gaps.reserve(events.size() - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    gaps.push_back(static_cast<double>(events[i] - events[i - 1]));
  }
  return gaps;
}

std::uint64_t MonthlySeries::total() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
}

std::vector<std::string> MonthlySeries::labels() const {
  std::vector<std::string> out;
  out.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.push_back(month_label(month_start(origin, static_cast<int>(i))));
  }
  return out;
}

MonthlySeries monthly_counts(std::span<const TimeSec> events, TimeSec begin, TimeSec end) {
  if (end <= begin) throw std::invalid_argument{"monthly_counts: empty window"};
  MonthlySeries out;
  out.origin = begin;
  const int n_months = month_index(end - 1, begin) + 1;
  out.counts.assign(static_cast<std::size_t>(n_months), 0);
  for (TimeSec t : events) {
    if (t < begin || t >= end) continue;
    const int idx = month_index(t, begin);
    out.counts[static_cast<std::size_t>(idx)] += 1;
  }
  return out;
}

}  // namespace titan::stats
