#include "stats/hazard.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace titan::stats {

double dispersion_of_counts(std::span<const TimeSec> times, TimeSec begin, TimeSec end,
                            TimeSec window) {
  if (window <= 0 || end <= begin) return 0.0;
  const auto windows = static_cast<std::size_t>((end - begin) / window);
  if (windows == 0) return 0.0;
  std::vector<double> counts(windows, 0.0);
  for (const TimeSec t : times) {
    if (t < begin || t >= end) continue;
    const auto w = static_cast<std::size_t>((t - begin) / window);
    if (w < windows) counts[w] += 1.0;
  }
  const double m = mean(counts);
  return m > 0.0 ? variance(counts) / m : 0.0;
}

double conditional_intensity_ratio(std::span<const TimeSec> times, TimeSec begin, TimeSec end,
                                   TimeSec window) {
  if (times.size() < 2 || end <= begin || window <= 0) return 0.0;
  std::size_t followed = 0;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    if (times[i] < begin || times[i] >= end - window) continue;  // full window only
    ++eligible;
    if (times[i + 1] - times[i] < window) ++followed;
  }
  if (eligible == 0) return 0.0;
  const double observed = static_cast<double>(followed) / static_cast<double>(eligible);
  const double rate = static_cast<double>(times.size()) / static_cast<double>(end - begin);
  const double poisson = 1.0 - std::exp(-rate * static_cast<double>(window));
  return poisson > 0.0 ? observed / poisson : 0.0;
}

double ks_vs_exponential(std::span<const double> gaps) {
  if (gaps.empty()) return 0.0;
  std::vector<double> sorted(gaps.begin(), gaps.end());
  std::sort(sorted.begin(), sorted.end());
  const double m = mean(sorted);
  if (m <= 0.0) return 1.0;
  const double rate = 1.0 / m;
  double ks = 0.0;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = 1.0 - std::exp(-rate * sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::abs(model - lo), std::abs(model - hi)});
  }
  return ks;
}

}  // namespace titan::stats
