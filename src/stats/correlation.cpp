#include "stats/correlation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace titan::stats {

namespace {

// Continued-fraction evaluation for the regularized incomplete beta
// function (Numerical Recipes style modified Lentz algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

// std::lgamma writes the process-global `signgam` on glibc, which is a
// data race when p-values are computed from parallel registry kernels;
// the reentrant lgamma_r keeps the sign in a local instead.
double lgamma_local(double v) {
#if defined(__GLIBC__)
  int sign = 0;
  return ::lgamma_r(v, &sign);
#else
  return std::lgamma(v);
#endif
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw std::invalid_argument{"regularized_incomplete_beta: a,b > 0"};
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front =
      lgamma_local(a + b) - lgamma_local(a) - lgamma_local(b) + a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  if (dof <= 0.0) throw std::invalid_argument{"student_t_cdf: dof > 0"};
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double correlation_p_value(double r, std::size_t n) {
  if (n < 3) return 1.0;
  const double dof = static_cast<double>(n - 2);
  const double denom = 1.0 - r * r;
  if (denom <= 0.0) return 0.0;  // |r| == 1: perfectly correlated
  const double t = r * std::sqrt(dof / denom);
  return 2.0 * (1.0 - student_t_cdf(std::abs(t), dof));
}

Correlation pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument{"pearson: size mismatch"};
  Correlation out;
  out.n = x.size();
  if (out.n < 2) return out;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return out;  // constant input: undefined
  out.coefficient = sxy / std::sqrt(sxx * syy);
  // Guard against rounding drift outside [-1, 1].
  out.coefficient = std::max(-1.0, std::min(1.0, out.coefficient));
  out.p_value = correlation_p_value(out.coefficient, out.n);
  return out;
}

Correlation spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument{"spearman: size mismatch"};
  const auto rx = average_ranks(x);
  const auto ry = average_ranks(y);
  return pearson(rx, ry);
}

}  // namespace titan::stats
