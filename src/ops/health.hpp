// Node-health monitoring policy: the operator-side state machine that
// consumes the live console-event stream and decides when a node leaves
// the schedulable pool.
//
// Encodes the practices the paper describes:
//  * hardware app-fatal errors (DBE, OTB) take a node down for repair
//    immediately (it crashed anyway) -- then it returns after service;
//  * repeated DBEs on the same node escalate to the hot-spare pull
//    (Section 3.1);
//  * "user-application" XIDs do NOT take a node down ("since XID 13 is
//    not associated with hardware, we did not take the node down
//    immediately") -- but a node that keeps raising them across many
//    *distinct jobs* becomes a diagnostics suspect, which is exactly how
//    the Observation 8 hardware fault was eventually caught.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/event_frame.hpp"
#include "xid/event.hpp"

namespace titan::ops {

enum class NodeState : std::uint8_t {
  kUp,        ///< schedulable
  kDown,      ///< crashed / in repair
  kSuspect,   ///< flagged for diagnostics (still schedulable)
};

enum class ActionKind : std::uint8_t {
  kTakeDown,        ///< hardware crash: node leaves the pool
  kReturnToService, ///< repair window elapsed
  kFlagSuspect,     ///< diagnostics requested (Observation 8 policy)
  kEscalateHotSpare,///< repeated DBEs: pull the card
};

struct OperatorAction {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  ActionKind kind{};
  xid::ErrorKind trigger{};
};

struct HealthPolicy {
  /// Repair turnaround after a hardware crash.
  stats::TimeSec repair_seconds = 4 * 3600;
  /// DBEs on one node within `dbe_window` that trigger the hot-spare pull.
  int dbe_escalation_count = 2;
  stats::TimeSec dbe_window = 30 * stats::kSecondsPerDay;
  /// Diagnostics review: a node is a suspect when the number of user-app
  /// XID occurrences on it within `suspect_window` (one per job, plus any
  /// job-less occurrences) is both at least `suspect_min_jobs` and at
  /// least `suspect_outlier_factor` times the fleet median (counting only
  /// nodes with any such errors).  An absolute threshold alone is useless
  /// on a busy machine -- every node eventually hosts crashing debug
  /// jobs; what exposed the Observation 8 node was standing out against
  /// its peers.
  stats::TimeSec suspect_window = 30 * stats::kSecondsPerDay;
  int suspect_min_jobs = 8;
  double suspect_outlier_factor = 4.0;
};

class NodeHealthMonitor {
 public:
  explicit NodeHealthMonitor(HealthPolicy policy = {}) : policy_{policy} {}

  /// Feed one event (events must arrive in time order).  Returns actions
  /// triggered by it (take-downs, returns, hot-spare escalations).
  std::vector<OperatorAction> observe(const xid::Event& event);

  /// Periodic diagnostics review (operators run this on a cadence):
  /// evaluates the suspect policy at `now` over the rolling window and
  /// returns newly flagged nodes.
  std::vector<OperatorAction> review_suspects(stats::TimeSec now);

  /// Current state of a node (applies pending repair completions lazily
  /// against `now`).
  [[nodiscard]] NodeState state(topology::NodeId node, stats::TimeSec now) const;

  /// All actions emitted so far, in order.
  [[nodiscard]] const std::vector<OperatorAction>& log() const noexcept { return log_; }

  /// Nodes currently flagged for diagnostics.
  [[nodiscard]] std::vector<topology::NodeId> suspects() const;

 private:
  struct AppError {
    stats::TimeSec time = 0;
    xid::JobId job = xid::kNoJob;
  };
  struct NodeRecord {
    stats::TimeSec down_until = 0;
    std::vector<stats::TimeSec> recent_dbes;
    std::vector<AppError> app_errors;  ///< pruned to the rolling window
    bool suspect = false;
    bool escalated = false;
  };

  /// App-error occurrences (job-deduped at ingest) in the node's window
  /// ending at `now` (prunes in place).
  [[nodiscard]] static std::size_t occurrences_in_window(NodeRecord& record,
                                                         stats::TimeSec now,
                                                         stats::TimeSec window);

  HealthPolicy policy_;
  /// Ordered map on purpose: review_suspects() and suspects() iterate it,
  /// and their output order (and therefore the action log) must not
  /// depend on hash layout.  The node population is small (fleet-sized),
  /// so the tree lookup is not a hot path.
  std::map<topology::NodeId, NodeRecord> nodes_;
  std::vector<OperatorAction> log_;
};

/// Frame-first replay: feed a whole EventFrame through `monitor` in stream
/// order, running the periodic diagnostics review every `review_interval`
/// of stream time and once more at the final event.  This is how the study
/// layer drives the operator policy -- offline what-if sweeps replay the
/// StudyContext frame instead of re-walking a raw event vector.  Returns
/// the monitor's full action log.
std::vector<OperatorAction> replay_frame(NodeHealthMonitor& monitor,
                                         const analysis::EventFrame& frame,
                                         stats::TimeSec review_interval = 7 *
                                                                          stats::kSecondsPerDay);

}  // namespace titan::ops
