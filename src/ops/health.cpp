#include "ops/health.hpp"

#include <algorithm>

namespace titan::ops {

namespace {

[[nodiscard]] bool is_hardware_crash(xid::ErrorKind kind) {
  return kind == xid::ErrorKind::kDoubleBitError || kind == xid::ErrorKind::kOffTheBus;
}

[[nodiscard]] bool is_user_app_kind(xid::ErrorKind kind) {
  const auto& info = xid::info(kind);
  return (info.causes & xid::kCauseUserApp) != 0;
}

}  // namespace

std::vector<OperatorAction> NodeHealthMonitor::observe(const xid::Event& event) {
  std::vector<OperatorAction> actions;
  auto& record = nodes_[event.node];

  // Lazily complete a pending repair.
  if (record.down_until != 0 && event.time >= record.down_until) {
    actions.push_back(OperatorAction{record.down_until, event.node,
                                     ActionKind::kReturnToService, event.kind});
    record.down_until = 0;
  }

  if (is_hardware_crash(event.kind)) {
    actions.push_back(
        OperatorAction{event.time, event.node, ActionKind::kTakeDown, event.kind});
    record.down_until = event.time + policy_.repair_seconds;

    if (event.kind == xid::ErrorKind::kDoubleBitError) {
      auto& dbes = record.recent_dbes;
      dbes.push_back(event.time);
      std::erase_if(dbes, [&](stats::TimeSec t) { return event.time - t > policy_.dbe_window; });
      if (!record.escalated && static_cast<int>(dbes.size()) >= policy_.dbe_escalation_count) {
        record.escalated = true;
        actions.push_back(OperatorAction{event.time, event.node,
                                         ActionKind::kEscalateHotSpare, event.kind});
      }
    }
  } else if (is_user_app_kind(event.kind)) {
    // User-application errors never take the node down; remember the
    // occurrence for the periodic diagnostics review.  Repeats from the
    // same job collapse to one entry (a crashing job reports once per
    // node); job-less occurrences -- exactly what a hardware-faulty node
    // produces while idle or across short windows -- always count.
    auto& errors = record.app_errors;
    const bool same_job_repeat = event.job != xid::kNoJob && !errors.empty() &&
                                 errors.back().job == event.job;
    if (!same_job_repeat) {
      errors.push_back(AppError{event.time, event.job});
    }
  }

  log_.insert(log_.end(), actions.begin(), actions.end());
  return actions;
}

std::size_t NodeHealthMonitor::occurrences_in_window(NodeRecord& record, stats::TimeSec now,
                                                       stats::TimeSec window) {
  std::erase_if(record.app_errors,
                [&](const AppError& e) { return now - e.time > window; });
  // Entries are already job-deduped at ingest; job-less occurrences each
  // count on their own.
  return record.app_errors.size();
}

std::vector<OperatorAction> NodeHealthMonitor::review_suspects(stats::TimeSec now) {
  // Pass 1: per-node distinct-job counts within the window.
  std::vector<std::pair<topology::NodeId, std::size_t>> counts;
  for (auto& [node, record] : nodes_) {
    const std::size_t distinct =
        occurrences_in_window(record, now, policy_.suspect_window);
    if (distinct > 0) counts.emplace_back(node, distinct);
  }
  if (counts.empty()) return {};

  // Fleet median of affected nodes: the peer baseline.
  std::vector<std::size_t> values;
  values.reserve(counts.size());
  for (const auto& [node, c] : counts) values.push_back(c);
  const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
  std::nth_element(values.begin(), mid, values.end());
  const double median = static_cast<double>(*mid);

  const double threshold = std::max(static_cast<double>(policy_.suspect_min_jobs),
                                    policy_.suspect_outlier_factor * median);

  std::vector<OperatorAction> actions;
  for (const auto& [node, count] : counts) {
    auto& record = nodes_[node];
    if (record.suspect) continue;
    if (static_cast<double>(count) >= threshold) {
      record.suspect = true;
      actions.push_back(OperatorAction{now, node, ActionKind::kFlagSuspect,
                                       xid::ErrorKind::kGraphicsEngineException});
    }
  }
  log_.insert(log_.end(), actions.begin(), actions.end());
  return actions;
}

NodeState NodeHealthMonitor::state(topology::NodeId node, stats::TimeSec now) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return NodeState::kUp;
  if (it->second.down_until != 0 && now < it->second.down_until) return NodeState::kDown;
  if (it->second.suspect) return NodeState::kSuspect;
  return NodeState::kUp;
}

std::vector<topology::NodeId> NodeHealthMonitor::suspects() const {
  std::vector<topology::NodeId> out;
  for (const auto& [node, record] : nodes_) {
    if (record.suspect) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<OperatorAction> replay_frame(NodeHealthMonitor& monitor,
                                         const analysis::EventFrame& frame,
                                         stats::TimeSec review_interval) {
  const auto times = frame.times();
  const auto nodes = frame.nodes();
  const auto kinds = frame.kinds();
  const auto structures = frame.structures();
  const auto cards = frame.cards();
  const auto jobs = frame.jobs();
  const auto roots = frame.roots();

  stats::TimeSec next_review =
      frame.empty() || review_interval <= 0 ? 0 : times.front() + review_interval;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    while (next_review != 0 && times[i] >= next_review) {
      monitor.review_suspects(next_review);
      next_review += review_interval;
    }
    xid::Event event;
    event.time = times[i];
    event.node = nodes[i];
    event.card = cards[i];
    event.kind = kinds[i];
    event.structure = structures[i];
    event.job = jobs[i];
    // observe() only needs root-ness; a child's parent index is not
    // recoverable from the frame, so any non-negative value stands in.
    event.parent = roots[i] != 0 ? -1 : 0;
    monitor.observe(event);
  }
  if (!frame.empty()) monitor.review_suspects(times.back());
  return monitor.log();
}

}  // namespace titan::ops
