#include "ingest/triage.hpp"

#include <algorithm>
#include <charconv>

#include "stats/rng.hpp"

namespace titan::ingest {

namespace {

constexpr std::string_view kCodeNames[kTriageCodeCount] = {
    "E_FILE_MISSING",      "E_NO_EVENTS",        "E_LINE_CRLF",
    "E_LINE_NUL",          "E_LINE_OVERLONG",    "E_FILE_UNTERMINATED",
    "E_CONSOLE_MALFORMED", "E_EVENT_DUPLICATE",  "E_EVENT_OUT_OF_ORDER",
    "E_JOB_MALFORMED",     "E_SMI_MALFORMED",    "E_MANIFEST_HEADER",
    "E_MANIFEST_FIELD",    "E_MANIFEST_UNKNOWN", "E_CHECKSUM_MISMATCH",
    "E_TDF_BAD_MAGIC",     "E_TDF_VERSION",      "E_TDF_TRUNCATED",
    "E_TDF_FOOTER",        "E_TDF_SEGMENT_CHECKSUM", "E_TDF_SEGMENT_CORRUPT",
    "E_TDF_UNKNOWN_SEGMENT", "E_FILE_TOO_LARGE",  "E_TDF_MMAP_UNAVAILABLE",
    "E_PROFILE_MISMATCH",  "E_ORPHAN_TMP",       "E_PARTIAL_SHARD_SET",
    "E_CKPT_HEADER",       "E_CKPT_FIELD",       "E_CKPT_CHECKSUM",
    "E_CKPT_MISMATCH",     "E_CKPT_INCOMPLETE",
};

constexpr std::string_view kActionNames[kSalvageActionCount] = {
    "rejected",
    "repaired",
    "quarantined",
    "ignored",
};

/// Walk `text` line by line with std::getline semantics: split on '\n',
/// a final fragment without a terminator is still a line, and a trailing
/// '\n' does not create an empty extra line.  Calls fn(line, line_no)
/// with 1-based numbering; the '\r' of a CRLF ending is NOT stripped here
/// (callers triage it so the repair is recorded).
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    fn(text.substr(pos, end - pos), ++line_no);
    pos = end + 1;
  }
}

/// Strip one trailing '\r' (CRLF repair), recording the finding.
std::string_view strip_crlf(std::string_view line, std::string_view file,
                            std::size_t line_no, IngestReport& report) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
    report.add(file, line_no, TriageCode::kLineCrlf, SalvageAction::kRepaired, {});
  }
  return line;
}

/// Record the missing-trailing-newline note (possible truncated write).
void note_termination(std::string_view text, std::string_view file, std::size_t last_line,
                      IngestReport& report) {
  if (!text.empty() && text.back() != '\n') {
    report.add(file, last_line, TriageCode::kFileUnterminated, SalvageAction::kIgnored,
               "no trailing newline (truncated write?)");
  }
}

/// Raise under kStrict, record under kSalvage.  Returns the action the
/// caller should account the line under (the one passed in).
void triage(IngestPolicy policy, IngestReport& report, std::string_view file,
            std::size_t line, TriageCode code, SalvageAction action,
            std::string_view detail) {
  if (policy == IngestPolicy::kStrict && fatal_in_strict(code)) {
    throw IngestError{std::string{file}, line, code, detail};
  }
  report.add(file, line, code, action, detail);
}

/// Short excerpt of a rejected line for diagnostics (detail strings stay
/// bounded even when the line is not).
std::string excerpt(std::string_view line) {
  constexpr std::size_t kMax = 48;
  std::string out;
  for (char c : line.substr(0, kMax)) {
    out += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  if (line.size() > kMax) out += "...";
  return out;
}

void append_count_row(std::string& out, std::string_view label, std::size_t count) {
  out += "  ";
  out += label;
  out.append(label.size() < 22 ? 22 - label.size() : 1, ' ');
  out += std::to_string(count);
  out += '\n';
}

}  // namespace

std::string_view policy_name(IngestPolicy policy) noexcept {
  return policy == IngestPolicy::kStrict ? "strict" : "salvage";
}

std::string_view code_name(TriageCode code) noexcept {
  return kCodeNames[static_cast<std::size_t>(code)];
}

std::string_view action_name(SalvageAction action) noexcept {
  return kActionNames[static_cast<std::size_t>(action)];
}

bool fatal_in_strict(TriageCode code) noexcept {
  // Exhaustive on purpose (no default): appending a TriageCode without
  // deciding its strict-mode fate is a -Wswitch error here, and
  // titanlint's taxo-switch-default rule keeps it that way.
  switch (code) {
    case TriageCode::kFileMissing:
    case TriageCode::kNoEvents:
    case TriageCode::kLineNul:
    case TriageCode::kLineOverlong:
    case TriageCode::kEventOutOfOrder:
    case TriageCode::kManifestHeader:
    case TriageCode::kManifestField:
    case TriageCode::kChecksumMismatch:
    case TriageCode::kTdfBadMagic:
    case TriageCode::kTdfVersionMismatch:
    case TriageCode::kTdfTruncated:
    case TriageCode::kTdfFooterCorrupt:
    case TriageCode::kTdfSegmentChecksum:
    case TriageCode::kTdfSegmentCorrupt:
    case TriageCode::kFileTooLarge:
    case TriageCode::kTdfMmapUnavailable:
    case TriageCode::kProfileMismatch:
    case TriageCode::kOrphanTmp:
    case TriageCode::kPartialShardSet:
    case TriageCode::kCkptHeader:
    case TriageCode::kCkptField:
    case TriageCode::kCkptChecksum:
    case TriageCode::kCkptMismatch:
    case TriageCode::kCkptIncomplete:
      return true;
    case TriageCode::kLineCrlf:
    case TriageCode::kFileUnterminated:
    case TriageCode::kConsoleMalformed:
    case TriageCode::kEventDuplicate:
    case TriageCode::kJobMalformed:
    case TriageCode::kSmiMalformed:
    case TriageCode::kManifestUnknown:
    case TriageCode::kTdfUnknownSegment:
    case TriageCode::kCount_:
      return false;
  }
  return false;  // unreachable; keeps -Wreturn-type quiet on odd compilers
}

namespace {

std::string format_ingest_error(const std::string& file, std::size_t line, TriageCode code,
                                std::string_view detail) {
  std::string out = "dataset ingest failed [";
  out += code_name(code);
  out += "]\n  at ";
  out += file;
  if (line != 0) {
    out += ':';
    out += std::to_string(line);
  }
  if (!detail.empty()) {
    out += "\n  ";
    out += detail;
  }
  out += "\n  hint: load with IngestPolicy::kSalvage to repair/quarantine and get a "
         "triage report instead";
  return out;
}

}  // namespace

IngestError::IngestError(std::string file, std::size_t line, TriageCode code,
                         std::string_view detail)
    : std::runtime_error{format_ingest_error(file, line, code, detail)},
      file_{std::move(file)},
      line_{line},
      code_{code} {}

void IngestReport::add(std::string_view file, std::size_t line, TriageCode code,
                       SalvageAction action, std::string_view detail) {
  ++total_;
  ++code_counts_[static_cast<std::size_t>(code)];
  ++action_counts_[static_cast<std::size_t>(action)];
  if (retained_.size() < kDetailBudget) {
    retained_.push_back(Diagnostic{std::string{file}, line, code, action,
                                   std::string{detail}});
  }
}

std::string IngestReport::summary_text() const {
  std::string out;
  out += "policy      : ";
  out += policy_name(policy_);
  out += '\n';
  out += "diagnostics : " + std::to_string(total_) + " (rejected " +
         std::to_string(count(SalvageAction::kRejected)) + ", repaired " +
         std::to_string(count(SalvageAction::kRepaired)) + ", quarantined " +
         std::to_string(count(SalvageAction::kQuarantined)) + ", ignored " +
         std::to_string(count(SalvageAction::kIgnored)) + ")\n";
  out += "repairs     : " + std::to_string(duplicates_removed) + " duplicate events removed, " +
         std::to_string(events_resorted) + " events re-sorted, " +
         std::to_string(lines_quarantined) + " spans quarantined\n";
  for (std::size_t i = 0; i < kTriageCodeCount; ++i) {
    if (code_counts_[i] == 0) continue;
    append_count_row(out, kCodeNames[i], code_counts_[i]);
  }
  constexpr std::size_t kShown = 8;
  if (!retained_.empty()) {
    out += "first findings";
    if (dropped() != 0) {
      out += " (" + std::to_string(dropped()) + " beyond the " +
             std::to_string(kDetailBudget) + "-entry budget)";
    }
    out += ":\n";
    for (std::size_t i = 0; i < retained_.size() && i < kShown; ++i) {
      const auto& d = retained_[i];
      out += "  " + d.file + ":" + std::to_string(d.line) + " [" +
             std::string{code_name(d.code)} + "] " + std::string{action_name(d.action)};
      if (!d.detail.empty()) out += ": " + d.detail;
      out += '\n';
    }
    if (retained_.size() > kShown) {
      out += "  ... " + std::to_string(retained_.size() - kShown) + " more retained\n";
    }
  }
  return out;
}

std::uint64_t content_checksum(std::string_view bytes) noexcept {
  return stats::hash_label(bytes);
}

std::string checksum_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

ConsoleIngest ingest_console_text(std::string_view text, std::string_view file,
                                  IngestPolicy policy, IngestReport& report) {
  ConsoleIngest out;
  std::string_view prev_raw;
  bool prev_was_event = false;
  bool sorted = true;
  std::size_t last_line = 0;

  for_each_line(text, [&](std::string_view raw, std::size_t line_no) {
    ++out.lines;
    last_line = line_no;
    const std::string_view line = strip_crlf(raw, file, line_no, report);
    const bool has_marker = line.find(parse::kGpuMarker) != std::string_view::npos;

    if (line.find('\0') != std::string_view::npos) {
      triage(policy, report, file, line_no, TriageCode::kLineNul,
             SalvageAction::kQuarantined, "embedded NUL byte");
      ++report.lines_quarantined;
      ++(has_marker ? out.malformed : out.unrelated);
      prev_was_event = false;
      prev_raw = raw;
      return;
    }
    if (line.size() > parse::kMaxConsoleLineLength) {
      triage(policy, report, file, line_no, TriageCode::kLineOverlong,
             SalvageAction::kQuarantined,
             "line of " + std::to_string(line.size()) + " bytes (cap " +
                 std::to_string(parse::kMaxConsoleLineLength) + ")");
      ++report.lines_quarantined;
      ++(has_marker ? out.malformed : out.unrelated);
      prev_was_event = false;
      prev_raw = raw;
      return;
    }

    const auto event = parse::parse_console_line(line);
    if (!event) {
      if (has_marker) {
        ++out.malformed;
        report.add(file, line_no, TriageCode::kConsoleMalformed, SalvageAction::kRejected,
                   excerpt(line));
      } else {
        ++out.unrelated;  // ordinary SMW chatter; not an error
      }
      prev_was_event = false;
      prev_raw = raw;
      return;
    }

    // The paper's double-count pathology: the same event line written
    // twice.  Salvage drops the byte-identical adjacent copy; strict
    // keeps both (duplicates are data, not structural corruption).
    if (policy == IngestPolicy::kSalvage && prev_was_event && raw == prev_raw) {
      report.add(file, line_no, TriageCode::kEventDuplicate, SalvageAction::kRepaired,
                 "byte-identical adjacent event line");
      ++report.duplicates_removed;
      return;
    }

    if (!out.events.empty() && event->time < out.events.back().time) {
      triage(policy, report, file, line_no, TriageCode::kEventOutOfOrder,
             SalvageAction::kRepaired,
             "timestamp " + stats::format_timestamp(event->time) +
                 " precedes the previous event (" +
                 stats::format_timestamp(out.events.back().time) + ")");
      ++report.events_resorted;
      sorted = false;
    }
    out.events.push_back(*event);
    prev_was_event = true;
    prev_raw = raw;
  });

  note_termination(text, file, last_line, report);
  if (!sorted) {
    // Stable: equal timestamps keep their on-disk order, so the repair is
    // deterministic and minimal.
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const parse::ParsedEvent& a, const parse::ParsedEvent& b) {
                       return a.time < b.time;
                     });
  }
  return out;
}

JobIngest ingest_job_text(std::string_view text, std::string_view file, IngestPolicy policy,
                          IngestReport& report) {
  (void)policy;  // no job-log finding is fatal in strict mode
  JobIngest out;
  std::size_t last_line = 0;
  for_each_line(text, [&](std::string_view raw, std::size_t line_no) {
    ++out.lines;
    last_line = line_no;
    const std::string_view line = strip_crlf(raw, file, line_no, report);
    if (const auto record = logsim::parse_job_log_line(line)) {
      out.records.push_back(*record);
    } else {
      ++out.malformed;
      report.add(file, line_no, TriageCode::kJobMalformed, SalvageAction::kRejected,
                 excerpt(line));
    }
  });
  note_termination(text, file, last_line, report);
  return out;
}

logsim::SmiSweepParse ingest_smi_text(std::string_view text, std::string_view file,
                                      IngestPolicy policy, IngestReport& report) {
  (void)policy;  // malformed smi blocks are counted, never fatal
  auto sweep = logsim::parse_smi_sweep_text(text);
  if (sweep.malformed_blocks != 0) {
    report.add(file, 0, TriageCode::kSmiMalformed, SalvageAction::kQuarantined,
               std::to_string(sweep.malformed_blocks) + " unparseable GPU block(s)");
  }
  return sweep;
}

namespace {

/// "key <integer>" manifest line; true when the key matched (with `ok`
/// telling whether the value parsed).
bool match_manifest_int(std::string_view line, std::string_view key, stats::TimeSec& out,
                        bool& ok) {
  if (!line.starts_with(key)) return false;
  auto rest = line.substr(key.size());
  if (rest.empty() || rest.front() != ' ') return false;
  rest.remove_prefix(1);
  stats::TimeSec value = 0;
  const auto result = std::from_chars(rest.data(), rest.data() + rest.size(), value);
  ok = result.ec == std::errc{} && result.ptr == rest.data() + rest.size();
  if (ok) out = value;
  return true;
}

}  // namespace

ManifestIngest ingest_manifest_text(std::string_view text, std::string_view file,
                                    IngestPolicy policy, IngestReport& report) {
  ManifestIngest out;
  std::size_t last_line = 0;
  for_each_line(text, [&](std::string_view raw, std::size_t line_no) {
    last_line = line_no;
    const std::string_view line = strip_crlf(raw, file, line_no, report);
    if (line_no == 1) {
      if (line != kDatasetManifestHeader) {
        triage(policy, report, file, line_no, TriageCode::kManifestHeader,
               SalvageAction::kIgnored,
               "expected '" + std::string{kDatasetManifestHeader} + "', got '" +
                   excerpt(line) + "'");
      }
      return;
    }
    if (line.empty()) return;

    const auto handle_int = [&](std::string_view key, stats::TimeSec& slot,
                                bool& have) -> bool {
      bool ok = false;
      if (!match_manifest_int(line, key, slot, ok)) return false;
      if (ok) {
        have = true;
      } else {
        triage(policy, report, file, line_no, TriageCode::kManifestField,
               SalvageAction::kRejected, excerpt(line));
      }
      return true;
    };
    if (handle_int("period_begin", out.begin, out.have_begin) ||
        handle_int("period_end", out.end, out.have_end) ||
        handle_int("accounting_from", out.accounting, out.have_accounting)) {
      return;
    }

    // "shards N": the sharded-layout container count (must be positive).
    {
      stats::TimeSec shards = 0;
      bool ok = false;
      if (match_manifest_int(line, "shards", shards, ok)) {
        if (ok && shards > 0) {
          out.have_shards = true;
          out.shards = static_cast<std::uint64_t>(shards);
        } else {
          triage(policy, report, file, line_no, TriageCode::kManifestField,
                 SalvageAction::kRejected, excerpt(line));
        }
        return;
      }
    }

    // "profile <name> <hash-hex>": the fleet profile the producer ran
    // under (validated against the load's profile by DatasetSource).
    if (line.starts_with("profile ")) {
      const auto rest = line.substr(8);
      const auto space = rest.find(' ');
      std::uint64_t value = 0;
      bool parsed = false;
      if (space != std::string_view::npos && space > 0) {
        const auto hex = rest.substr(space + 1);
        const auto result =
            std::from_chars(hex.data(), hex.data() + hex.size(), value, 16);
        parsed = !hex.empty() && result.ec == std::errc{} &&
                 result.ptr == hex.data() + hex.size();
      }
      if (!parsed) {
        triage(policy, report, file, line_no, TriageCode::kManifestField,
               SalvageAction::kRejected, excerpt(line));
        return;
      }
      out.have_profile = true;
      out.profile_name = std::string{rest.substr(0, space)};
      out.profile_hash = value;
      return;
    }

    if (line.starts_with("checksum ")) {
      const auto rest = line.substr(9);
      const auto space = rest.find(' ');
      std::uint64_t value = 0;
      bool parsed = false;
      if (space != std::string_view::npos) {
        const auto hex = rest.substr(space + 1);
        const auto result =
            std::from_chars(hex.data(), hex.data() + hex.size(), value, 16);
        parsed = !hex.empty() && result.ec == std::errc{} &&
                 result.ptr == hex.data() + hex.size();
      }
      if (!parsed) {
        triage(policy, report, file, line_no, TriageCode::kManifestField,
               SalvageAction::kRejected, excerpt(line));
        return;
      }
      out.checksums.emplace_back(std::string{rest.substr(0, space)}, value);
      return;
    }

    // Unknown keys are forward-compatible: noted, never fatal.
    report.add(file, line_no, TriageCode::kManifestUnknown, SalvageAction::kIgnored,
               excerpt(line));
  });
  note_termination(text, file, last_line, report);
  return out;
}

}  // namespace titan::ingest
