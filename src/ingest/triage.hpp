// Ingestion triage: the error taxonomy, structured diagnostics and the
// salvage/strict policy for loading on-disk datasets.
//
// The paper's 21 months of operational data were messy -- console logs
// full of unrelated chatter, double-counted XID 13 reports that had to be
// filtered before Fig. 12, and nvidia-smi sweeps that disagree with the
// console view (Obs. 2).  This layer makes that messiness a first-class
// product of ingestion: every rejected or repaired line yields a
// Diagnostic (file, line, taxonomy code, salvage action) accumulated into
// an IngestReport with a bounded detail budget, and the IngestPolicy
// decides whether corruption is fatal (kStrict: fail fast with an
// actionable multi-line message naming file/line/code) or repaired
// (kSalvage: dedup byte-identical adjacent events, re-sort regressed
// timestamps, quarantine unparseable spans -- and record everything).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "logsim/joblog.hpp"
#include "logsim/smi_text.hpp"
#include "parse/console.hpp"
#include "stats/calendar.hpp"

namespace titan::ingest {

/// How DatasetSource::load treats corrupt input.
enum class IngestPolicy : std::uint8_t {
  kStrict,   ///< fail fast on structural corruption (integrity errors)
  kSalvage,  ///< repair what is repairable, quarantine the rest, record all
};

[[nodiscard]] std::string_view policy_name(IngestPolicy policy) noexcept;

/// The error taxonomy.  Every diagnostic carries exactly one code; codes
/// are stable identifiers (serialized into reports and error messages).
enum class TriageCode : std::uint8_t {
  kFileMissing,       ///< a file the dataset claims (or requires) is absent
  kNoEvents,          ///< console parsed to zero events -- nothing to study
  kLineCrlf,          ///< CRLF line ending (repaired: '\r' stripped)
  kLineNul,           ///< embedded NUL byte (quarantined)
  kLineOverlong,      ///< line beyond kMaxConsoleLineLength (quarantined)
  kFileUnterminated,  ///< no trailing newline (possible truncated write)
  kConsoleMalformed,  ///< GPU-marker line the console grammar rejects
  kEventDuplicate,    ///< byte-identical adjacent event line (double count)
  kEventOutOfOrder,   ///< timestamp regression in the event stream
  kJobMalformed,      ///< unparseable job-accounting line
  kSmiMalformed,      ///< unparseable nvidia-smi block
  kManifestHeader,    ///< manifest present but the header line is wrong
  kManifestField,     ///< manifest key present but its value is malformed
  kManifestUnknown,   ///< manifest line matching no known key
  kChecksumMismatch,  ///< file content disagrees with its manifest checksum
  // Binary (TDF) container damage classes -- see src/tdf/tdf.hpp for the
  // full strict/salvage policy.
  kTdfBadMagic,         ///< magic bytes or endian marker wrong (not a TDF file)
  kTdfVersionMismatch,  ///< container version this reader does not speak
  kTdfTruncated,        ///< file shorter than the header/table claims
  kTdfFooterCorrupt,    ///< segment table mangled (checksum, bounds, duplicates)
  kTdfSegmentChecksum,  ///< segment body disagrees with its table checksum
  kTdfSegmentCorrupt,   ///< segment body fails to decode (bad varint, range)
  kTdfUnknownSegment,   ///< unknown segment kind (skipped; forward compat)
  kFileTooLarge,        ///< file beyond the single-file ingest size cap
  kTdfMmapUnavailable,  ///< mmap failed and the container exceeds the
                        ///< bounded fallback read cap (out-of-core decode
                        ///< needs the mapping)
  kProfileMismatch,     ///< dataset's recorded fleet profile is unknown,
                        ///< hash-divergent, or not the one the load asked
                        ///< for (salvage adopts the dataset's profile)
  // Crash-state classes: what a writer killed mid-flight leaves behind
  // (see src/faulttest and DESIGN.md "Crash consistency").
  kOrphanTmp,        ///< leftover *.tmp from a crashed atomic write
  kPartialShardSet,  ///< sharded roster incomplete (a shard container missing)
  kCkptHeader,       ///< study checkpoint header line wrong
  kCkptField,        ///< study checkpoint field/structure malformed
  kCkptChecksum,     ///< study checkpoint self-checksum missing or wrong
  kCkptMismatch,     ///< checkpoint disagrees with the resume config
                     ///< (seed, profile hash, shard plan)
  kCkptIncomplete,   ///< checkpoint present but no committed manifest:
                     ///< generation was interrupted mid-write
  kCount_,
};

inline constexpr std::size_t kTriageCodeCount =
    static_cast<std::size_t>(TriageCode::kCount_);

/// Stable code identifier ("E_LINE_CRLF", ...).
[[nodiscard]] std::string_view code_name(TriageCode code) noexcept;

/// True when kStrict turns the code into an IngestError instead of a
/// diagnostic.  Benign operational noise (malformed chatter, CRLF,
/// missing optional files without a manifest claim) never trips strict
/// mode -- real console logs are full of it.
[[nodiscard]] bool fatal_in_strict(TriageCode code) noexcept;

/// What the salvage path did about a finding.
enum class SalvageAction : std::uint8_t {
  kRejected,     ///< input dropped, nothing recoverable
  kRepaired,     ///< input transformed into a usable form
  kQuarantined,  ///< input isolated (kept out of the event stream)
  kIgnored,      ///< noted for the record, no effect on the load
  kCount_,
};

inline constexpr std::size_t kSalvageActionCount =
    static_cast<std::size_t>(SalvageAction::kCount_);

[[nodiscard]] std::string_view action_name(SalvageAction action) noexcept;

/// One triage finding: where, what, and what was done about it.
struct Diagnostic {
  std::string file;      ///< dataset-relative file name ("console.log")
  std::size_t line = 0;  ///< 1-based line number; 0 = whole-file finding
  TriageCode code = TriageCode::kConsoleMalformed;
  SalvageAction action = SalvageAction::kRejected;
  std::string detail;  ///< free-form context (kept short)

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) = default;
};

/// Strict-mode failure: std::runtime_error carrying the file, line and
/// taxonomy code, with a multi-line actionable message.
class IngestError : public std::runtime_error {
 public:
  IngestError(std::string file, std::size_t line, TriageCode code, std::string_view detail);

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] TriageCode code() const noexcept { return code_; }

 private:
  std::string file_;
  std::size_t line_;
  TriageCode code_;
};

/// Accumulated triage record of one dataset load.  Per-code and
/// per-action tallies are always exact; full Diagnostic details are
/// retained only up to kDetailBudget (the bounded error budget), so a
/// pathological input cannot balloon the report.
class IngestReport {
 public:
  static constexpr std::size_t kDetailBudget = 64;

  explicit IngestReport(IngestPolicy policy = IngestPolicy::kSalvage) : policy_{policy} {}

  /// Record a finding.  Detail strings are materialized only while the
  /// budget lasts; counters are updated regardless.
  void add(std::string_view file, std::size_t line, TriageCode code, SalvageAction action,
           std::string_view detail);

  [[nodiscard]] IngestPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t dropped() const noexcept {
    return total_ - retained_.size();
  }
  [[nodiscard]] bool clean() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t count(TriageCode code) const noexcept {
    return code_counts_[static_cast<std::size_t>(code)];
  }
  [[nodiscard]] std::size_t count(SalvageAction action) const noexcept {
    return action_counts_[static_cast<std::size_t>(action)];
  }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return retained_;
  }

  /// Byte-stable plain-text triage summary (policy, tallies per code, the
  /// first findings).  Deterministic: depends only on the add() sequence.
  [[nodiscard]] std::string summary_text() const;

  /// Repair tallies (salvage mode).
  std::size_t duplicates_removed = 0;  ///< byte-identical adjacent events dropped
  std::size_t events_resorted = 0;     ///< timestamp regressions repaired by re-sort
  std::size_t lines_quarantined = 0;   ///< NUL/overlong spans kept out of the stream

 private:
  IngestPolicy policy_;
  std::vector<Diagnostic> retained_;
  std::array<std::size_t, kTriageCodeCount> code_counts_{};
  std::array<std::size_t, kSalvageActionCount> action_counts_{};
  std::size_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Ingestion primitives.  Each consumes one dataset file's raw bytes,
// classifies every line, and feeds the report; under kStrict a
// fatal_in_strict() finding throws IngestError instead.
// ---------------------------------------------------------------------------

/// First line of every manifest written by study::write_dataset.
inline constexpr std::string_view kDatasetManifestHeader = "titanrel-dataset v1";

/// FNV-1a 64 over raw file bytes -- the manifest content checksum.
[[nodiscard]] std::uint64_t content_checksum(std::string_view bytes) noexcept;

/// Fixed-width (16 digit) lowercase-hex rendering of a checksum.
[[nodiscard]] std::string checksum_hex(std::uint64_t value);

/// Console-log ingestion product.  Counters mirror parse::ParseResult so
/// clean inputs produce identical load statistics.
struct ConsoleIngest {
  std::vector<parse::ParsedEvent> events;  ///< time-sorted after salvage
  std::size_t lines = 0;
  std::size_t malformed = 0;  ///< GPU-marker lines the grammar rejected
  std::size_t unrelated = 0;  ///< well-formed non-GPU chatter
};

[[nodiscard]] ConsoleIngest ingest_console_text(std::string_view text, std::string_view file,
                                                IngestPolicy policy, IngestReport& report);

/// Job-accounting ingestion product.
struct JobIngest {
  std::vector<logsim::JobLogRecord> records;
  std::size_t lines = 0;
  std::size_t malformed = 0;
};

[[nodiscard]] JobIngest ingest_job_text(std::string_view text, std::string_view file,
                                        IngestPolicy policy, IngestReport& report);

/// nvidia-smi sweep ingestion: parse_smi_sweep_text plus triage of any
/// malformed blocks.
[[nodiscard]] logsim::SmiSweepParse ingest_smi_text(std::string_view text,
                                                    std::string_view file,
                                                    IngestPolicy policy,
                                                    IngestReport& report);

/// Manifest ingestion product: the study window, accounting cutoff and
/// the content checksums the producer recorded.
struct ManifestIngest {
  bool have_begin = false;
  bool have_end = false;
  bool have_accounting = false;
  stats::TimeSec begin = 0;
  stats::TimeSec end = 0;
  stats::TimeSec accounting = 0;
  bool have_shards = false;
  std::uint64_t shards = 0;  ///< shard container count (sharded datasets)
  /// Fleet profile the producer recorded (`profile <name> <hash-hex>`);
  /// absent in pre-profile manifests.
  bool have_profile = false;
  std::string profile_name;
  std::uint64_t profile_hash = 0;
  /// (file name, checksum) pairs, manifest order.
  std::vector<std::pair<std::string, std::uint64_t>> checksums;
};

[[nodiscard]] ManifestIngest ingest_manifest_text(std::string_view text,
                                                  std::string_view file,
                                                  IngestPolicy policy,
                                                  IngestReport& report);

}  // namespace titan::ingest
