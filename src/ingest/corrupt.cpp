#include "ingest/corrupt.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "ingest/triage.hpp"
#include "parse/console.hpp"
#include "stats/rng.hpp"
#include "tdf/format.hpp"

namespace titan::ingest {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kDatasetFiles[] = {"console.log", "jobs.log", "smi_sweep.txt",
                                              "dataset.tdf", "manifest.txt"};
constexpr std::string_view kConsole = "console.log";
constexpr std::string_view kManifest = "manifest.txt";
constexpr std::string_view kTdf = tdf::kTdfFileName;

/// Binary-safe slurp (NULs and CRLF must survive round-trips).
std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::string out;
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    out.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  return out;
}

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error{"corrupt_dataset: cannot write " + path.string()};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Text split into lines plus whether the final line carried a '\n'.
struct Lines {
  std::vector<std::string> lines;
  bool terminated = true;

  [[nodiscard]] std::string join() const {
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out += lines[i];
      if (i + 1 < lines.size() || terminated) out += '\n';
    }
    return out;
  }
};

Lines split(std::string_view text) {
  Lines out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      out.lines.emplace_back(text.substr(pos));
      out.terminated = false;
      break;
    }
    out.lines.emplace_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

/// Per-line mutation probability clamped so even tiny datasets see at
/// least a fair chance of one mutation.
double clamped(double intensity) {
  return intensity < 0.001 ? 0.001 : (intensity > 1.0 ? 1.0 : intensity);
}

constexpr std::string_view kChatter[] = {
    "smw: heartbeat ok",
    "console[4211]: link inquiry on c0-0c0s0n1",
    "[2014-06-02 04:05:06] c0-0c0s0n1 HSN throttle cleared",
    "ec_node_warm: warm swap initiated by operator",
    "[bad-timestamp] c1-0c0s0n0 GPU DBE missing the colon grammar",
};

std::size_t op_truncate_file(std::string& text, stats::Rng& rng) {
  if (text.size() < 2) return 0;
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(text.size()) * rng.uniform(0.6, 0.95));
  text.resize(keep == 0 ? 1 : keep);
  return 1;
}

std::size_t op_truncate_lines(Lines& doc, stats::Rng& rng, double p) {
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    if (line.empty() || !rng.bernoulli(p)) continue;
    line.resize(static_cast<std::size_t>(rng.below(line.size())));
    ++n;
  }
  return n;
}

std::size_t op_flip_chars(Lines& doc, stats::Rng& rng, double p) {
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    if (line.empty() || !rng.bernoulli(p)) continue;
    const auto pos = static_cast<std::size_t>(rng.below(line.size()));
    line[pos] = static_cast<char>('!' + rng.below(94));  // random printable
    ++n;
  }
  return n;
}

std::size_t op_flip_bits(Lines& doc, stats::Rng& rng, double p) {
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    if (line.empty() || !rng.bernoulli(p)) continue;
    const auto pos = static_cast<std::size_t>(rng.below(line.size()));
    line[pos] = static_cast<char>(
        static_cast<unsigned char>(line[pos]) ^ (1U << rng.below(8)));
    ++n;
  }
  return n;
}

std::size_t op_duplicate_lines(Lines& doc, stats::Rng& rng, double p) {
  std::vector<std::string> out;
  out.reserve(doc.lines.size());
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    out.push_back(line);
    if (!line.empty() && rng.bernoulli(p)) {
      out.push_back(std::move(line));  // the paper's double-counted report
      ++n;
    }
  }
  doc.lines = std::move(out);
  return n;
}

std::size_t op_interleave_chatter(Lines& doc, stats::Rng& rng, double p) {
  std::vector<std::string> out;
  out.reserve(doc.lines.size());
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    if (rng.bernoulli(p)) {
      out.emplace_back(kChatter[rng.below(std::size(kChatter))]);
      ++n;
    }
    out.push_back(std::move(line));
  }
  doc.lines = std::move(out);
  return n;
}

std::size_t op_shuffle_order(Lines& doc, stats::Rng& rng, double p) {
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < doc.lines.size(); ++i) {
    if (!rng.bernoulli(p)) continue;
    std::swap(doc.lines[i], doc.lines[i + 1]);
    ++i;  // a swapped pair is not re-swapped
    ++n;
  }
  return n;
}

std::size_t op_crlf(Lines& doc) {
  for (auto& line : doc.lines) line += '\r';
  return doc.lines.size();
}

std::size_t op_inject_nul(Lines& doc, stats::Rng& rng, double p) {
  std::size_t n = 0;
  for (auto& line : doc.lines) {
    if (line.empty() || !rng.bernoulli(p)) continue;
    line.insert(static_cast<std::size_t>(rng.below(line.size() + 1)), 1, '\0');
    ++n;
  }
  return n;
}

std::size_t op_overlong_line(Lines& doc) {
  std::string line = "[2014-06-02 04:05:06] c0-0c0s0n1 GPU DBE: ";
  line.append(parse::kMaxConsoleLineLength * 2, 'A');
  doc.lines.push_back(std::move(line));
  return 1;
}

std::size_t op_drop_optional(const fs::path& dst, stats::Rng& rng, std::string& file) {
  const auto choice = rng.below(3);
  std::size_t n = 0;
  if (choice != 1 && fs::remove(dst / "jobs.log")) {
    file = "jobs.log";
    ++n;
  }
  if (choice != 0 && fs::remove(dst / "smi_sweep.txt")) {
    file = n != 0 ? "jobs.log+smi_sweep.txt" : "smi_sweep.txt";
    ++n;
  }
  return n;
}

std::size_t op_mangle_manifest(Lines& doc, stats::Rng& rng) {
  if (doc.lines.empty()) return 0;
  switch (rng.below(3)) {
    case 0:
      doc.lines[0] = "titanrel-dataset v999";
      return 1;
    case 1:
      for (auto& line : doc.lines) {
        if (line.starts_with("period_begin ")) {
          line = "period_begin twelve";
          return 1;
        }
      }
      return 0;
    default:
      for (auto& line : doc.lines) {
        if (line.starts_with("period_end ")) {
          line += "junk";
          return 1;
        }
      }
      return 0;
  }
}

void flip_bit(std::string& bytes, std::size_t pos, stats::Rng& rng) {
  bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                 (1U << rng.below(8)));
}

std::size_t op_tdf_truncate(std::string& bytes, stats::Rng& rng) {
  if (bytes.size() < tdf::kTdfHeaderSize + 1) return 0;
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(bytes.size()) * rng.uniform(0.5, 0.95));
  bytes.resize(keep == 0 ? 1 : keep);
  return 1;
}

std::size_t op_tdf_header_flip(std::string& bytes, stats::Rng& rng) {
  // The first 16 bytes hold magic, version and the endian marker; any
  // flipped bit there must surface as E_TDF_BAD_MAGIC or E_TDF_VERSION.
  if (bytes.size() < 16) return 0;
  flip_bit(bytes, static_cast<std::size_t>(rng.below(16)), rng);
  return 1;
}

std::size_t op_tdf_footer_mangle(std::string& bytes, stats::Rng& rng) {
  if (bytes.size() < tdf::kTdfHeaderSize) return 0;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto table_offset = tdf::load_u64(p + tdf::kTdfTableOffsetOffset);
  if (table_offset >= bytes.size()) return 0;
  // A flipped table bit must trip the header's table checksum (E_TDF_FOOTER).
  const auto pos = static_cast<std::size_t>(
      table_offset + rng.below(bytes.size() - table_offset));
  flip_bit(bytes, pos, rng);
  return 1;
}

std::size_t op_tdf_checksum_tamper(std::string& bytes, stats::Rng& rng) {
  // Flip a bit inside one segment *body* (never the inter-segment
  // padding, which no checksum covers), so the per-segment FNV-1a must
  // catch it: E_TDF_SEGMENT_CHECKSUM, strict-fatal for required segments
  // and quarantined for optional ones.
  if (bytes.size() < tdf::kTdfHeaderSize) return 0;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const auto table_offset = tdf::load_u64(p + tdf::kTdfTableOffsetOffset);
  const auto count = tdf::load_u64(p + tdf::kTdfSegmentCountOffset);
  if (table_offset + count * tdf::kTdfEntrySize > bytes.size()) return 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bodies;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto* e = p + table_offset + i * tdf::kTdfEntrySize;
    const auto offset = tdf::load_u64(e + 8);
    const auto length = tdf::load_u64(e + 16);
    if (length != 0 && offset + length <= bytes.size()) bodies.emplace_back(offset, length);
  }
  if (bodies.empty()) return 0;
  const auto& [offset, length] = bodies[rng.below(bodies.size())];
  flip_bit(bytes, static_cast<std::size_t>(offset + rng.below(length)), rng);
  return 1;
}

/// Re-point the manifest's checksum claim for `name` at `bytes`.  The TDF
/// operators call this after mutating the container so the damage is
/// diagnosed by the TDF layer's own validation (named E_TDF_* codes), not
/// masked by the earlier manifest checksum gate.
void repatch_manifest_checksum(const fs::path& dst, std::string_view name,
                               std::string_view bytes) {
  const auto manifest_path = dst / kManifest;
  if (!fs::exists(manifest_path)) return;
  auto doc = split(read_file(manifest_path));
  const std::string prefix = "checksum " + std::string{name} + ' ';
  for (auto& line : doc.lines) {
    if (line.starts_with(prefix)) line = prefix + checksum_hex(content_checksum(bytes));
  }
  write_file(manifest_path, doc.join());
}

std::size_t op_checksum_mismatch(Lines& doc) {
  for (auto& line : doc.lines) {
    if (!line.starts_with("checksum ")) continue;
    // Flip the final hex digit so the recorded checksum can no longer
    // match the (untouched) file content.
    line.back() = line.back() == '0' ? 'f' : '0';
    return 1;
  }
  // Pre-checksum manifest: claim a checksum that cannot match.
  doc.lines.emplace_back("checksum console.log 0000000000000000");
  return 1;
}

}  // namespace

std::string_view op_name(CorruptionOp op) noexcept {
  constexpr std::string_view kNames[kCorruptionOpCount] = {
      "truncate-file", "truncate-lines",     "flip-chars",   "flip-bits",
      "duplicate-lines", "interleave-chatter", "shuffle-order", "crlf-endings",
      "inject-nul",    "overlong-line",      "drop-optional-file",
      "mangle-manifest", "checksum-mismatch",
      "tdf-truncate",  "tdf-header-flip",    "tdf-footer-mangle", "tdf-checksum-tamper",
  };
  return kNames[static_cast<std::size_t>(op)];
}

std::array<CorruptionOp, kCorruptionOpCount> all_corruption_ops() noexcept {
  std::array<CorruptionOp, kCorruptionOpCount> out{};
  for (std::size_t i = 0; i < kCorruptionOpCount; ++i) {
    out[i] = static_cast<CorruptionOp>(i);
  }
  return out;
}

std::size_t CorruptionSummary::total_mutations() const noexcept {
  std::size_t n = 0;
  for (const auto& result : applied) n += result.mutations;
  return n;
}

CorruptionSummary corrupt_dataset(const fs::path& src, const fs::path& dst,
                                  const CorruptionSpec& spec) {
  if (!fs::exists(src / kConsole) && !fs::exists(src / kTdf)) {
    throw std::runtime_error{"corrupt_dataset: no dataset at " + src.string() +
                             " (missing console.log and dataset.tdf)"};
  }
  fs::create_directories(dst);
  for (const auto name : kDatasetFiles) {
    if (fs::exists(src / name)) {
      write_file(dst / name, read_file(src / name));
    } else {
      fs::remove(dst / name);
    }
  }

  const stats::Rng base{spec.seed};
  const double p = clamped(spec.intensity);
  CorruptionSummary summary;

  for (const auto op : spec.ops) {
    // The per-operator stream is keyed by the operator's stable name, a
    // compile-time table lookup -- deterministic, but opaque to the
    // static manifest, so it carries an explicit waiver.
    auto rng = base.fork(op_name(op));  // titanlint: allow(stream-dynamic-label)
    CorruptionSummary::OpResult result{op, std::string{kConsole}, 0};

    // Whole-file and non-console operators first.
    if (op == CorruptionOp::kTruncateFile) {
      if (fs::exists(dst / kConsole)) {
        auto text = read_file(dst / kConsole);
        result.mutations = op_truncate_file(text, rng);
        write_file(dst / kConsole, text);
      }
      summary.applied.push_back(std::move(result));
      continue;
    }
    if (op == CorruptionOp::kDropOptionalFile) {
      result.mutations = op_drop_optional(dst, rng, result.file);
      summary.applied.push_back(std::move(result));
      continue;
    }
    if (op == CorruptionOp::kMangleManifest || op == CorruptionOp::kChecksumMismatch) {
      result.file = std::string{kManifest};
      if (fs::exists(dst / kManifest)) {
        auto doc = split(read_file(dst / kManifest));
        result.mutations = op == CorruptionOp::kMangleManifest
                               ? op_mangle_manifest(doc, rng)
                               : op_checksum_mismatch(doc);
        write_file(dst / kManifest, doc.join());
      }
      summary.applied.push_back(std::move(result));
      continue;
    }
    if (op_targets_tdf(op)) {
      result.file = std::string{kTdf};
      if (fs::exists(dst / kTdf)) {
        auto bytes = read_file(dst / kTdf);
        switch (op) {
          case CorruptionOp::kTdfTruncate:
            result.mutations = op_tdf_truncate(bytes, rng);
            break;
          case CorruptionOp::kTdfHeaderFlip:
            result.mutations = op_tdf_header_flip(bytes, rng);
            break;
          case CorruptionOp::kTdfFooterMangle:
            result.mutations = op_tdf_footer_mangle(bytes, rng);
            break;
          default:
            result.mutations = op_tdf_checksum_tamper(bytes, rng);
            break;
        }
        write_file(dst / kTdf, bytes);
        repatch_manifest_checksum(dst, kTdf, bytes);
      }
      summary.applied.push_back(std::move(result));
      continue;
    }
    if (!fs::exists(dst / kConsole)) {
      // Text operator on a binary-only dataset: nothing to mutate.
      summary.applied.push_back(std::move(result));
      continue;
    }

    auto doc = split(read_file(dst / kConsole));
    switch (op) {
      case CorruptionOp::kTruncateLines:
        result.mutations = op_truncate_lines(doc, rng, p);
        break;
      case CorruptionOp::kFlipChars:
        result.mutations = op_flip_chars(doc, rng, p);
        break;
      case CorruptionOp::kFlipBits:
        result.mutations = op_flip_bits(doc, rng, p);
        break;
      case CorruptionOp::kDuplicateLines:
        result.mutations = op_duplicate_lines(doc, rng, p);
        break;
      case CorruptionOp::kInterleaveChatter:
        result.mutations = op_interleave_chatter(doc, rng, p);
        break;
      case CorruptionOp::kShuffleOrder:
        result.mutations = op_shuffle_order(doc, rng, p);
        break;
      case CorruptionOp::kCrlfEndings:
        result.mutations = op_crlf(doc);
        break;
      case CorruptionOp::kInjectNul:
        result.mutations = op_inject_nul(doc, rng, p);
        break;
      case CorruptionOp::kOverlongLine:
        result.mutations = op_overlong_line(doc);
        break;
      default:
        break;  // handled above
    }
    write_file(dst / kConsole, doc.join());
    summary.applied.push_back(std::move(result));
  }
  return summary;
}

}  // namespace titan::ingest
