// Deterministic dataset corruptor: composable operators mirroring the
// log pathologies a real 21-month field study ingests -- truncated files
// and lines, flipped chars/bits, duplicated event lines (the paper's
// XID 13 double count), interleaved non-GPU chatter, out-of-order
// timestamps, CRLF/NUL/overlong lines, missing optional files, and a
// mangled or checksum-mismatched manifest.
//
// corrupt_dataset(src, dst, spec) copies a write_dataset directory and
// applies spec.ops in order.  Every operator draws from its own named
// stats::Rng sub-stream forked from spec.seed, so the output bytes depend
// only on (source bytes, op list, seed) -- the robustness harness relies
// on that to diff clean vs. corrupted sweeps reproducibly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace titan::ingest {

enum class CorruptionOp : std::uint8_t {
  kTruncateFile,      ///< cut the tail of console.log (mid-line)
  kTruncateLines,     ///< cut random console lines short
  kFlipChars,         ///< substitute random printable characters
  kFlipBits,          ///< flip one random bit in random lines
  kDuplicateLines,    ///< write random event lines twice, adjacently
  kInterleaveChatter, ///< insert unrelated SMW chatter between events
  kShuffleOrder,      ///< swap adjacent lines (timestamp regressions)
  kCrlfEndings,       ///< rewrite every LF ending as CRLF
  kInjectNul,         ///< embed NUL bytes inside random lines
  kOverlongLine,      ///< append one pathologically long GPU-marker line
  kDropOptionalFile,  ///< delete jobs.log and/or smi_sweep.txt
  kMangleManifest,    ///< corrupt the manifest header or a field value
  kChecksumMismatch,  ///< make a manifest checksum disagree with content
  // Binary (dataset.tdf) operators.  Each re-patches the manifest's
  // "checksum dataset.tdf" claim to match the corrupted bytes, so the TDF
  // container's own validation -- not the manifest gate -- must name the
  // damage class.
  kTdfTruncate,       ///< cut the container's tail (segment table lost)
  kTdfHeaderFlip,     ///< flip a bit in the magic/version/endian header bytes
  kTdfFooterMangle,   ///< flip a bit inside the segment table
  kTdfChecksumTamper, ///< flip a bit inside one segment body
  kCount_,
};

inline constexpr std::size_t kCorruptionOpCount =
    static_cast<std::size_t>(CorruptionOp::kCount_);

/// Stable operator identifier ("truncate-file", ...); also the Rng
/// sub-stream label.
[[nodiscard]] std::string_view op_name(CorruptionOp op) noexcept;

/// Every operator, declaration order.
[[nodiscard]] std::array<CorruptionOp, kCorruptionOpCount> all_corruption_ops() noexcept;

/// True for operators that mutate the binary container (dataset.tdf)
/// rather than the text artifacts.  Harnesses split their sweeps on this:
/// text operators are no-ops on binary-only datasets and vice versa.
[[nodiscard]] constexpr bool op_targets_tdf(CorruptionOp op) noexcept {
  return op >= CorruptionOp::kTdfTruncate && op < CorruptionOp::kCount_;
}

struct CorruptionSpec {
  std::vector<CorruptionOp> ops;  ///< applied in this order
  std::uint64_t seed = 0;
  double intensity = 0.02;  ///< per-line mutation probability where applicable
};

/// What one corrupt_dataset call did, operator by operator.
struct CorruptionSummary {
  struct OpResult {
    CorruptionOp op = CorruptionOp::kTruncateFile;
    std::string file;           ///< primary file the operator touched
    std::size_t mutations = 0;  ///< lines/bytes/files mutated
  };
  std::vector<OpResult> applied;

  [[nodiscard]] std::size_t total_mutations() const noexcept;
};

/// Copy the dataset at `src` into `dst` (created if needed; existing
/// dataset files are overwritten) and apply every operator in
/// `spec.ops`, in order.  Deterministic in (src bytes, spec).  Throws
/// std::runtime_error when `src` has no console.log or `dst` cannot be
/// written.
CorruptionSummary corrupt_dataset(const std::filesystem::path& src,
                                  const std::filesystem::path& dst,
                                  const CorruptionSpec& spec);

}  // namespace titan::ingest
