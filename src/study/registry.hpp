// AnalysisRegistry: every paper analysis as a named frame-first kernel.
//
// A kernel is a pure function of a const StudyContext; the registry runs
// a selection as one deterministic titan::par sweep (results land in
// selection order regardless of scheduling).  Entries declare the
// capabilities they need, so availability is a property of the loaded
// context -- a dataset without an nvidia-smi sweep simply has no
// "sbe_study" -- rather than of the source type.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "study/context.hpp"
#include "study/report.hpp"

namespace titan::study {

class AnalysisRegistry {
 public:
  struct Entry {
    std::string name;
    std::string description;  ///< one line, for CLI listings
    unsigned needs = 0;       ///< Capability mask the kernel reads
    std::function<AnalysisResult(const StudyContext&)> kernel;
  };

  /// The registry with the ten paper analyses registered: frequency,
  /// spatial, xid_matrix, sbe_study, retirement, interruption,
  /// prediction, utilization, reliability_report, workload_char.
  [[nodiscard]] static const AnalysisRegistry& standard();

  /// Register an entry.  Throws std::invalid_argument on a duplicate name.
  void add(Entry entry);

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Names runnable against this context, registration order.
  [[nodiscard]] std::vector<std::string> available(const StudyContext& context) const;

  /// Run the named analyses as one parallel sweep.  Throws
  /// std::invalid_argument on an unknown name or one whose capability
  /// needs the context cannot meet.
  [[nodiscard]] StudyReport run(const StudyContext& context,
                                std::span<const std::string> selection) const;

  /// Run everything available(context) can offer.
  [[nodiscard]] StudyReport run_all(const StudyContext& context) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace titan::study
