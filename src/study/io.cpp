#include "study/io.hpp"

#include <fstream>
#include <stdexcept>
#include <system_error>

#include "faulttest/atomic_file.hpp"
#include "ingest/triage.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;

/// Size of `path` if it exists as a regular file; 0 otherwise.  Throws
/// E_FILE_TOO_LARGE beyond the ingest cap -- before any read touches the
/// bytes, so a 5 GiB log cannot be silently clamped by narrower offsets.
std::uint64_t checked_file_size(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return 0;  // missing/unreadable: the read yields empty
  if (size > kMaxIngestFileBytes) {
    throw ingest::IngestError{
        path.filename().string(), 0, ingest::TriageCode::kFileTooLarge,
        "file of " + std::to_string(size) + " bytes exceeds the " +
            std::to_string(kMaxIngestFileBytes) + "-byte single-file ingest cap"};
  }
  return size;
}

}  // namespace

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  const auto size = checked_file_size(path);
  // Binary mode: '\r' handling is ours, not the stream's, so CRLF files
  // read identically on every platform.
  std::ifstream in{path, std::ios::binary};
  std::vector<std::string> lines;
  // Console lines average well under 128 bytes; an estimate keeps the
  // vector from doubling through a multi-million-line log.
  lines.reserve(static_cast<std::size_t>(size / 64));
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  lines.shrink_to_fit();
  return lines;
}

std::string read_all(const std::filesystem::path& path) {
  const auto size = checked_file_size(path);
  std::ifstream in{path, std::ios::binary};
  if (!in) return {};
  std::string out;
  out.resize(static_cast<std::size_t>(size));
  in.read(out.data(), static_cast<std::streamsize>(out.size()));
  // The file may have changed between stat and read; trust what we got.
  out.resize(static_cast<std::size_t>(in.gcount()));
  return out;
}

void write_lines(const std::filesystem::path& path, std::span<const std::string> lines) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path.string()};
  for (const auto& line : lines) out << line << '\n';
}

void write_text(const std::filesystem::path& path, std::string_view text) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path.string()};
  out << text;
}

void atomic_write_text(const std::filesystem::path& path, std::string_view text) {
  faulttest::atomic_write_file(path, text, "atomic_write_text");
}

void atomic_write_lines(const std::filesystem::path& path,
                        std::span<const std::string> lines) {
  std::string text;
  std::size_t bytes = 0;
  for (const auto& line : lines) bytes += line.size() + 1;
  text.reserve(bytes);
  for (const auto& line : lines) {
    text += line;
    text += '\n';
  }
  atomic_write_text(path, text);
}

}  // namespace titan::study
