#include "study/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace titan::study {

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  // Binary mode: '\r' handling is ours, not the stream's, so CRLF files
  // read identically on every platform.
  std::ifstream in{path, std::ios::binary};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::string read_all(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_lines(const std::filesystem::path& path, std::span<const std::string> lines) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path.string()};
  for (const auto& line : lines) out << line << '\n';
}

void write_text(const std::filesystem::path& path, std::string_view text) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path.string()};
  out << text;
}

}  // namespace titan::study
