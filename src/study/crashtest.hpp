// Differential crash-sweep harness: the executable proof behind the
// crash-consistency claim.
//
// run_runlength_sweep drives a dataset writer through every kill point
// it has: a reference run under FaultMode::kNone counts the kill-point
// hits (T of them), then the writer is rerun T times under
// FaultMode::kRunLength with n = 1..T, dying at a different durable-
// state transition each time.  Every killed directory is classified
// against exactly two acceptable outcomes:
//
//   * kCleanSalvage -- the directory still loads, and BOTH the strict
//     and salvage loads digest byte-identically to the reference (the
//     kill landed after the commit point or before anything durable
//     changed meaning);
//   * kNamedFailure -- the strict load throws ingest::IngestError with a
//     taxonomy code (E_ORPHAN_TMP, E_CKPT_INCOMPLETE,
//     E_PARTIAL_SHARD_SET, ...): the damage was detected and named.
//
// Anything else -- a load that succeeds with different bytes, or an
// unnamed exception -- is kSilentCorruption, the outcome the whole
// subsystem exists to make impossible.  After classification the
// caller's resume function runs against the killed directory and the
// result must be byte-identical, file for file, to the reference.
//
// Classification happens on a scratch COPY of each killed directory, so
// salvage-side quarantining never pollutes what resume sees.
#pragma once

#include <cstddef>
#include <filesystem>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faulttest/faulttest.hpp"
#include "ingest/triage.hpp"

namespace titan::study {

/// What one kill left behind.
enum class CrashOutcome : std::uint8_t {
  kCleanSalvage,      ///< loads byte-identically to the reference
  kNamedFailure,      ///< strict load throws a named IngestError
  kSilentCorruption,  ///< loads differently, or dies without a name
};

[[nodiscard]] std::string_view crash_outcome_name(CrashOutcome outcome) noexcept;

/// One kill point's verdict.
struct KillOutcome {
  std::size_t kill_point = 0;  ///< 1-based RunLength index
  std::string site;            ///< kill-point site name that fired
  CrashOutcome outcome = CrashOutcome::kSilentCorruption;
  std::optional<ingest::TriageCode> code;  ///< set for kNamedFailure
  bool resume_identical = false;
  std::string detail;  ///< difference / error context when not clean
};

/// The whole sweep's verdict.
struct SweepResult {
  std::size_t total_points = 0;                ///< kill-point hits in the reference run
  std::vector<faulttest::SiteHits> sites;      ///< reference-run site census
  std::vector<KillOutcome> kills;              ///< one per kill point, ascending
  std::map<std::string, std::size_t> sites_killed;  ///< site -> kill count
  std::map<std::string, std::size_t> code_counts;   ///< code name -> named failures

  /// True when no kill produced silent corruption and every resume was
  /// byte-identical to the reference.
  [[nodiscard]] bool clean() const noexcept;

  /// Byte-stable sweep summary (bench + test output).
  [[nodiscard]] std::string summary_text() const;
};

/// A dataset producer under test: writes (or resumes) into the given
/// directory.
using WriteFn = std::function<void(const std::filesystem::path&)>;

/// First difference between two directories' regular files (names
/// compared as sorted relative paths, contents byte for byte), or
/// nullopt when identical.
[[nodiscard]] std::optional<std::string> first_dir_difference(
    const std::filesystem::path& a, const std::filesystem::path& b);

[[nodiscard]] bool dirs_identical(const std::filesystem::path& a,
                                  const std::filesystem::path& b);

/// Run the full RunLength sweep for `write`, resuming each killed
/// directory with `resume`, under `scratch` (created; contents clobbered).
/// Leaves the fault-test subsystem disarmed (FaultMode::kNone) on return.
[[nodiscard]] SweepResult run_runlength_sweep(const WriteFn& write, const WriteFn& resume,
                                              const std::filesystem::path& scratch);

}  // namespace titan::study
