#include "study/crashtest.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "logsim/smi_text.hpp"
#include "study/io.hpp"
#include "study/serialize_detail.hpp"
#include "study/source.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;
using ingest::IngestPolicy;

/// Deterministic digest of a loaded context: the canonical text
/// serializations hashed, plus the window, profile identity and (for
/// salvage loads) the triage summary.  Two contexts digest equally iff
/// a study over them is byte-identical.
std::string context_digest(const StudyContext& context) {
  std::string bytes;
  for (const auto& line : detail::console_lines_of(context)) {
    bytes += line;
    bytes += '\n';
  }
  std::string digest = "console " + ingest::checksum_hex(ingest::content_checksum(bytes));
  bytes.clear();
  for (const auto& line : detail::job_lines_of(context)) {
    bytes += line;
    bytes += '\n';
  }
  digest += " jobs " + ingest::checksum_hex(ingest::content_checksum(bytes));
  digest += " smi " +
            ingest::checksum_hex(ingest::content_checksum(
                logsim::smi_sweep_text(context.snapshot)));
  digest += " period " + std::to_string(context.period.begin) + ':' +
            std::to_string(context.period.end) + ':' +
            std::to_string(context.accounting_from);
  digest += " profile " + std::string{context.profile->name} + ':' +
            ingest::checksum_hex(context.profile->content_hash());
  if (context.ingest_report) {
    digest += " triage " +
              ingest::checksum_hex(
                  ingest::content_checksum(context.ingest_report->summary_text()));
  }
  return digest;
}

std::string load_digest(const fs::path& dir, IngestPolicy policy) {
  return context_digest(DatasetSource{dir, policy}.load());
}

/// Sorted dataset-relative paths of every regular file under `dir`.
std::vector<std::string> file_roster(const fs::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::recursive_directory_iterator it{dir, ec}, end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file()) {
      names.push_back(fs::relative(it->path(), dir).generic_string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::string_view crash_outcome_name(CrashOutcome outcome) noexcept {
  switch (outcome) {
    case CrashOutcome::kCleanSalvage: return "clean-salvage";
    case CrashOutcome::kNamedFailure: return "named-failure";
    case CrashOutcome::kSilentCorruption: return "silent-corruption";
  }
  return "?";
}

std::optional<std::string> first_dir_difference(const fs::path& a, const fs::path& b) {
  const auto roster_a = file_roster(a);
  const auto roster_b = file_roster(b);
  for (const auto& name : roster_a) {
    if (!std::binary_search(roster_b.begin(), roster_b.end(), name)) {
      return "file " + name + " exists only in " + a.filename().string();
    }
  }
  for (const auto& name : roster_b) {
    if (!std::binary_search(roster_a.begin(), roster_a.end(), name)) {
      return "file " + name + " exists only in " + b.filename().string();
    }
  }
  for (const auto& name : roster_a) {
    if (read_all(a / name) != read_all(b / name)) {
      return "file " + name + " differs byte-wise";
    }
  }
  return std::nullopt;
}

bool dirs_identical(const fs::path& a, const fs::path& b) {
  return !first_dir_difference(a, b).has_value();
}

bool SweepResult::clean() const noexcept {
  for (const auto& kill : kills) {
    if (kill.outcome == CrashOutcome::kSilentCorruption || !kill.resume_identical) {
      return false;
    }
  }
  return true;
}

std::string SweepResult::summary_text() const {
  std::size_t counts[3] = {0, 0, 0};
  std::size_t resumed = 0;
  for (const auto& kill : kills) {
    ++counts[static_cast<std::size_t>(kill.outcome)];
    if (kill.resume_identical) ++resumed;
  }
  std::string text = "crash sweep: " + std::to_string(total_points) +
                     " kill points across " + std::to_string(sites.size()) + " sites\n";
  text += "outcomes: clean-salvage " + std::to_string(counts[0]) + ", named-failure " +
          std::to_string(counts[1]) + ", silent-corruption " + std::to_string(counts[2]) +
          '\n';
  text += "resume: " + std::to_string(resumed) + '/' + std::to_string(kills.size()) +
          " byte-identical\n";
  text += "codes:\n";
  for (const auto& [code, count] : code_counts) {
    text += "  " + code + ' ' + std::to_string(count) + '\n';
  }
  text += "sites killed:\n";
  for (const auto& [site, count] : sites_killed) {
    text += "  " + site + ' ' + std::to_string(count) + '\n';
  }
  for (const auto& kill : kills) {
    if (kill.outcome == CrashOutcome::kSilentCorruption || !kill.resume_identical) {
      text += "FAIL kill " + std::to_string(kill.kill_point) + " at " + kill.site + " [" +
              std::string{crash_outcome_name(kill.outcome)} + "]: " + kill.detail + '\n';
    }
  }
  text += std::string{"verdict: "} + (clean() ? "no silent corruption" : "CORRUPTION") +
          '\n';
  return text;
}

SweepResult run_runlength_sweep(const WriteFn& write, const WriteFn& resume,
                                const fs::path& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // Reference run: kNone arms nothing but counts every kill-point hit,
  // which is exactly the sweep's enumeration of what to kill.
  faulttest::FaultTestInit(faulttest::FaultConfig{});
  const auto reference = scratch / "reference";
  write(reference);
  const auto census = faulttest::fault_test_report();

  SweepResult out;
  out.total_points = census.total_hits;
  out.sites = census.sites;

  const auto ref_strict = load_digest(reference, IngestPolicy::kStrict);
  const auto ref_salvage = load_digest(reference, IngestPolicy::kSalvage);

  for (std::size_t k = 1; k <= out.total_points; ++k) {
    const auto dir = scratch / ("kill-" + std::to_string(k));
    fs::remove_all(dir);

    faulttest::FaultConfig config;
    config.mode = faulttest::FaultMode::kRunLength;
    config.run_length = k;
    faulttest::FaultTestInit(config);

    KillOutcome kill;
    kill.kill_point = k;
    kill.site = "(completed)";
    try {
      write(dir);
    } catch (const faulttest::KillPointError& error) {
      kill.site = error.site();
    }
    // Disarm before touching the directory again: loads and resume must
    // run kill-free.
    faulttest::FaultTestInit(faulttest::FaultConfig{});
    ++out.sites_killed[kill.site];

    // Classify a COPY, so salvage-side quarantining cannot leak into the
    // resume the original directory sees.
    if (!fs::exists(dir)) fs::create_directories(dir);  // killed before mkdir
    const auto probe = scratch / "probe";
    fs::remove_all(probe);
    fs::copy(dir, probe, fs::copy_options::recursive);
    try {
      const auto strict = load_digest(probe, IngestPolicy::kStrict);
      const auto salvage = load_digest(probe, IngestPolicy::kSalvage);
      if (strict == ref_strict && salvage == ref_salvage) {
        kill.outcome = CrashOutcome::kCleanSalvage;
      } else {
        kill.outcome = CrashOutcome::kSilentCorruption;
        kill.detail = "loads succeed but digests diverge from the reference";
      }
    } catch (const ingest::IngestError& error) {
      kill.outcome = CrashOutcome::kNamedFailure;
      kill.code = error.code();
      kill.detail = error.file() + ": " + std::string{ingest::code_name(error.code())};
      ++out.code_counts[std::string{ingest::code_name(error.code())}];
    } catch (const std::exception& error) {
      kill.outcome = CrashOutcome::kSilentCorruption;
      kill.detail = std::string{"unnamed load failure: "} + error.what();
    }

    try {
      resume(dir);
      if (const auto diff = first_dir_difference(dir, reference)) {
        kill.detail += (kill.detail.empty() ? "" : "; ");
        kill.detail += "resume not byte-identical: " + *diff;
      } else {
        kill.resume_identical = true;
      }
    } catch (const std::exception& error) {
      kill.detail += (kill.detail.empty() ? "" : "; ");
      kill.detail += std::string{"resume failed: "} + error.what();
    }
    out.kills.push_back(std::move(kill));
  }
  faulttest::FaultTestInit(faulttest::FaultConfig{});
  return out;
}

}  // namespace titan::study
