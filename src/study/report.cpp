#include "study/report.hpp"

namespace titan::study {

const AnalysisResult* StudyReport::find(std::string_view name) const noexcept {
  for (const auto& result : results) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

std::string StudyReport::text() const {
  std::string out;
  out += "== titanrel study report ==============================================\n";
  out += "period   : " + stats::format_timestamp(period.begin) + " .. " +
         stats::format_timestamp(period.end) + " (" + std::to_string(period.months()) +
         " months)\n";
  out += "analyses : " + std::to_string(results.size()) + "\n";
  for (const auto& result : results) {
    out += "\n-- " + result.name + " ";
    const std::size_t pad = result.name.size() < 67 ? 67 - result.name.size() : 0;
    out.append(pad, '-');
    out += "\n";
    out += result.text;
    if (!result.text.empty() && result.text.back() != '\n') out += "\n";
  }
  return out;
}

std::string StudyReport::json() const {
  auto period_json = JsonValue::object();
  period_json.set("begin", period.begin)
      .set("end", period.end)
      .set("months", period.months());

  auto analyses = JsonValue::object();
  for (const auto& result : results) analyses.set(result.name, result.json);

  auto root = JsonValue::object();
  root.set("period", std::move(period_json)).set("analyses", std::move(analyses));
  return root.dump();
}

}  // namespace titan::study
