#include "study/report.hpp"

namespace titan::study {

namespace {

/// One titled report section, the shared "-- name ----" framing.
void append_section(std::string& out, const AnalysisResult& result) {
  out += "\n-- " + result.name + " ";
  const std::size_t pad = result.name.size() < 67 ? 67 - result.name.size() : 0;
  out.append(pad, '-');
  out += "\n";
  out += result.text;
  if (!result.text.empty() && result.text.back() != '\n') out += "\n";
}

}  // namespace

const AnalysisResult* StudyReport::find(std::string_view name) const noexcept {
  if (ingest && ingest->name == name) return &*ingest;
  for (const auto& result : results) {
    if (result.name == name) return &result;
  }
  return nullptr;
}

std::string StudyReport::text() const {
  std::string out;
  out += "== titanrel study report ==============================================\n";
  out += "period   : " + stats::format_timestamp(period.begin) + " .. " +
         stats::format_timestamp(period.end) + " (" + std::to_string(period.months()) +
         " months)\n";
  out += "analyses : " + std::to_string(results.size()) + "\n";
  if (ingest) append_section(out, *ingest);
  for (const auto& result : results) append_section(out, result);
  return out;
}

std::string StudyReport::json() const {
  auto period_json = JsonValue::object();
  period_json.set("begin", period.begin)
      .set("end", period.end)
      .set("months", period.months());

  auto analyses = JsonValue::object();
  for (const auto& result : results) analyses.set(result.name, result.json);

  auto root = JsonValue::object();
  root.set("period", std::move(period_json));
  if (ingest) root.set("ingest", ingest->json);
  root.set("analyses", std::move(analyses));
  return root.dump();
}

AnalysisResult ingest_section(const ingest::IngestReport& report) {
  AnalysisResult out{.name = "ingest", .text = report.summary_text(),
                     .json = JsonValue::object()};

  auto codes = JsonValue::object();
  for (std::size_t i = 0; i < ingest::kTriageCodeCount; ++i) {
    const auto code = static_cast<ingest::TriageCode>(i);
    if (report.count(code) == 0) continue;
    codes.set(std::string{ingest::code_name(code)}, report.count(code));
  }
  auto actions = JsonValue::object();
  for (std::size_t i = 0; i < ingest::kSalvageActionCount; ++i) {
    const auto action = static_cast<ingest::SalvageAction>(i);
    if (report.count(action) == 0) continue;
    actions.set(std::string{ingest::action_name(action)}, report.count(action));
  }
  auto repairs = JsonValue::object();
  repairs.set("duplicates_removed", report.duplicates_removed)
      .set("events_resorted", report.events_resorted)
      .set("lines_quarantined", report.lines_quarantined);
  auto findings = JsonValue::array();
  for (const auto& d : report.diagnostics()) {
    auto entry = JsonValue::object();
    entry.set("file", d.file)
        .set("line", d.line)
        .set("code", std::string{ingest::code_name(d.code)})
        .set("action", std::string{ingest::action_name(d.action)});
    if (!d.detail.empty()) entry.set("detail", d.detail);
    findings.push(std::move(entry));
  }

  out.json.set("policy", std::string{ingest::policy_name(report.policy())})
      .set("diagnostics", report.total())
      .set("dropped_beyond_budget", report.dropped())
      .set("codes", std::move(codes))
      .set("actions", std::move(actions))
      .set("repairs", std::move(repairs))
      .set("findings", std::move(findings));
  return out;
}

}  // namespace titan::study
