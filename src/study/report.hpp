// StudyReport: the structured artifact one registry sweep produces.
//
// Each analysis contributes one AnalysisResult envelope (name, rendered
// text section, structured JSON value).  The report serializes
// deterministically -- results in sweep order, objects in insertion
// order, numbers via std::to_chars -- so the bytes are identical at any
// titan::par width and across sources that share the same capabilities.
// Nothing source-specific (seed, directory, source name) is serialized.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/triage.hpp"
#include "stats/calendar.hpp"
#include "study/json.hpp"

namespace titan::study {

/// One analysis' contribution to the report.
struct AnalysisResult {
  std::string name;  ///< registry name ("frequency", "spatial", ...)
  std::string text;  ///< rendered section body (render::ascii)
  JsonValue json;    ///< structured result

  friend bool operator==(const AnalysisResult& a, const AnalysisResult& b) = default;
};

struct StudyReport {
  stats::StudyPeriod period{};
  /// Triage section of a salvage-mode dataset load; absent for strict
  /// loads and simulated sources, so clean-input reports are byte-for-
  /// byte what an ingest-unaware build emits.
  std::optional<AnalysisResult> ingest;
  std::vector<AnalysisResult> results;  ///< selection order

  [[nodiscard]] const AnalysisResult* find(std::string_view name) const noexcept;

  /// Full plain-text report: header plus one titled section per result
  /// (the ingest triage section first, when present).
  [[nodiscard]] std::string text() const;

  /// Compact JSON: {"period": {...}, ["ingest": {...},] "analyses":
  /// {name: ..., ...}}.
  [[nodiscard]] std::string json() const;
};

/// Render an IngestReport as a report section: summary_text() plus a
/// structured JSON value (policy, tallies, repairs, retained findings).
[[nodiscard]] AnalysisResult ingest_section(const ingest::IngestReport& report);

}  // namespace titan::study
