#include "study/source.hpp"

#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "analysis/events_view.hpp"
#include "logsim/console.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"
#include "tdf/tdf.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;
using ingest::IngestPolicy;
using ingest::IngestReport;
using ingest::SalvageAction;
using ingest::TriageCode;

/// Record a whole-file finding; under kStrict a fatal code throws
/// IngestError naming the file instead.
void triage_file(IngestPolicy policy, IngestReport& report, std::string_view file,
                 TriageCode code, SalvageAction action, std::string_view detail) {
  if (policy == IngestPolicy::kStrict && ingest::fatal_in_strict(code)) {
    throw ingest::IngestError{std::string{file}, 0, code, detail};
  }
  report.add(file, 0, code, action, detail);
}

/// Verify every checksum the manifest claims against on-disk bytes.
/// A claimed-but-missing file and a content mismatch are both integrity
/// findings (fatal under kStrict).  `skip` names one file whose claim is
/// presence-checked but not hashed: the TDF container self-validates
/// every byte it decodes (table + per-segment FNV-1a), and hashing its
/// full contents here would read the file twice on the load fast path.
void verify_checksums(const fs::path& dir, const ingest::ManifestIngest& manifest,
                      IngestPolicy policy, IngestReport& report,
                      std::string_view skip = {}) {
  for (const auto& [name, expected] : manifest.checksums) {
    const auto path = dir / name;
    if (name == skip && fs::exists(path)) continue;
    if (!fs::exists(path)) {
      triage_file(policy, report, name, TriageCode::kFileMissing, SalvageAction::kIgnored,
                  "manifest claims a checksum for this file but it is missing");
      continue;
    }
    const auto actual = ingest::content_checksum(read_all(path));
    if (actual != expected) {
      triage_file(policy, report, name, TriageCode::kChecksumMismatch, SalvageAction::kIgnored,
                  "manifest records " + ingest::checksum_hex(expected) + ", content hashes to " +
                      ingest::checksum_hex(actual));
    }
  }
}

/// Ingest manifest.txt when present, verifying its checksum claims.
ingest::ManifestIngest load_manifest(const fs::path& dir, IngestPolicy policy,
                                     IngestReport& report, std::string_view skip = {}) {
  ingest::ManifestIngest manifest;
  const auto manifest_path = dir / "manifest.txt";
  if (fs::exists(manifest_path)) {
    manifest = ingest::ingest_manifest_text(read_all(manifest_path), "manifest.txt", policy,
                                            report);
    verify_checksums(dir, manifest, policy, report, skip);
  }
  return manifest;
}

/// The binary load path: mmap dataset.tdf, decode its columns, and build
/// the EventFrame straight from them (no text parsing, no ParsedEvent
/// intermediate for the frame).
StudyContext load_binary(const fs::path& dir, const fs::path& tdf_path, IngestPolicy policy,
                         IngestReport& report) {
  const auto manifest = load_manifest(dir, policy, report, tdf::kTdfFileName);

  auto data = tdf::read_tdf(tdf_path, policy, report);
  if (data.times.empty()) {
    throw ingest::IngestError{std::string{tdf::kTdfFileName}, 0, TriageCode::kNoEvents,
                              "dataset at " + dir.string() + " contains no events"};
  }

  StudyContext context;
  context.frame = analysis::EventFrame::from_columns(data.times, data.nodes, data.kinds,
                                                     data.structures);
  // The row view is still materialized (some kernels and the differential
  // tests consume it), but from decoded columns -- no text in the loop.
  context.events.resize(data.times.size());
  for (std::size_t i = 0; i < data.times.size(); ++i) {
    context.events[i] =
        parse::ParsedEvent{data.times[i], data.nodes[i], data.kinds[i], data.structures[i]};
  }
  context.capabilities = kEvents;

  // Study window: the container's meta segment is authoritative (it is
  // what write_dataset recorded); a manifest, when present, was already
  // cross-checked by its checksum claim on the container bytes.
  if (data.period_begin != 0 || data.period_end != 0) {
    context.period.begin = data.period_begin;
    context.period.end = data.period_end;
    context.accounting_from = data.accounting_from;
  } else {
    context.period.begin = manifest.have_begin ? manifest.begin : data.times.front();
    context.period.end = manifest.have_end ? manifest.end : data.times.back() + 1;
    context.accounting_from =
        manifest.have_accounting ? manifest.accounting : context.period.begin;
  }

  if (data.has_jobs) {
    context.load_stats.job_lines = data.jobs.size();
    context.job_log = std::move(data.jobs);
  }
  if (data.has_smi) {
    context.snapshot = std::move(data.snapshot);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.capabilities |= kSnapshot;
  }

  context.load_stats.binary = true;
  context.load_stats.tdf_segments =
      std::size_t{6} + (data.has_jobs ? 1U : 0U) + (data.has_smi ? 1U : 0U);
  std::error_code ec;
  const auto size = fs::file_size(tdf_path, ec);
  context.load_stats.tdf_bytes = ec ? 0 : static_cast<std::size_t>(size);
  return context;
}

StudyContext load_text(const fs::path& dir, IngestPolicy policy, IngestReport& report) {
  const auto console_path = dir / "console.log";
  if (!fs::exists(console_path)) {
    // Fatal under either policy: with no console log there is nothing to
    // salvage a study from.
    throw ingest::IngestError{"console.log", 0, TriageCode::kFileMissing,
                              "no dataset at " + dir.string()};
  }

  // Manifest first: the producer's claims (study window, accounting
  // cutoff, content checksums) gate everything that follows.
  const auto manifest = load_manifest(dir, policy, report);

  StudyContext context;
  auto console = ingest::ingest_console_text(read_all(console_path), "console.log", policy,
                                             report);
  context.load_stats.console_lines = console.lines;
  context.load_stats.malformed_lines = console.malformed;
  context.load_stats.unrelated_lines = console.unrelated;
  context.events = std::move(console.events);
  if (context.events.empty()) {
    throw ingest::IngestError{"console.log", 0, TriageCode::kNoEvents,
                              "dataset at " + dir.string() + " contains no console events"};
  }
  context.frame =
      analysis::EventFrame::build(std::span<const parse::ParsedEvent>{context.events});
  context.capabilities = kEvents;

  // Study window: manifest claims, else the event stream's span (foreign
  // datasets without a manifest).
  context.period.begin = manifest.have_begin ? manifest.begin : context.events.front().time;
  context.period.end = manifest.have_end ? manifest.end : context.events.back().time + 1;
  context.accounting_from =
      manifest.have_accounting ? manifest.accounting : context.period.begin;

  if (const auto jobs_path = dir / "jobs.log"; fs::exists(jobs_path)) {
    auto jobs = ingest::ingest_job_text(read_all(jobs_path), "jobs.log", policy, report);
    context.load_stats.job_lines = jobs.lines;
    context.load_stats.malformed_job_lines = jobs.malformed;
    context.job_log = std::move(jobs.records);
  }

  if (const auto sweep_text = read_all(dir / "smi_sweep.txt"); !sweep_text.empty()) {
    auto sweep = ingest::ingest_smi_text(sweep_text, "smi_sweep.txt", policy, report);
    context.snapshot.taken_at = sweep.taken_at;
    context.snapshot.records = std::move(sweep.records);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.load_stats.malformed_smi_blocks = sweep.malformed_blocks;
    context.capabilities |= kSnapshot;
  }
  return context;
}

}  // namespace

StudyContext SimulatedSource::load() const {
  StudyContext context;
  context.truth = core::run_study(config_);
  const auto& truth = *context.truth;

  context.period = truth.config.period;
  context.accounting_from = truth.config.campaign.timeline.new_driver;
  context.events = analysis::as_parsed(truth.events);
  context.frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{context.events}, &truth.fleet.ledger());
  context.truth_frame = analysis::EventFrame::build(std::span<const xid::Event>{truth.events},
                                                    &truth.fleet.ledger());
  context.snapshot = truth.final_snapshot;

  context.load_stats.console_lines = truth.console_log.size();
  context.load_stats.job_lines = truth.trace.jobs().size();
  context.load_stats.smi_blocks = truth.final_snapshot.records.size();

  context.capabilities = kEvents | kLedger | kTrace | kGroundTruth | kStrikes;
  if (truth.config.take_final_snapshot) context.capabilities |= kSnapshot;
  return context;
}

StudyContext DatasetSource::load() const {
  IngestReport report{policy_};

  // A binary container takes precedence: it is the format written for
  // exactly this load path (mmap + columnar decode).
  const auto tdf_path = dir_ / std::string{tdf::kTdfFileName};
  StudyContext context = fs::exists(tdf_path)
                             ? load_binary(dir_, tdf_path, policy_, report)
                             : load_text(dir_, policy_, report);

  // Only salvage loads carry the triage record into the report pipeline;
  // a strict load that got this far saw nothing fatal, and omitting the
  // (possibly benign-finding-bearing) report keeps clean-input study
  // reports byte-identical to an ingest-unaware build.
  if (policy_ == IngestPolicy::kSalvage) context.ingest_report = std::move(report);
  return context;
}

namespace {

/// Console lines of the context: the simulator's exact log when ground
/// truth is present, else the console-recoverable view re-serialized (the
/// same event stream either way).
std::vector<std::string> console_lines_of(const StudyContext& context) {
  if (context.truth) return context.truth->console_log;
  std::vector<std::string> lines;
  lines.reserve(context.events.size());
  for (const auto& e : context.events) {
    xid::Event event;
    event.time = e.time;
    event.node = e.node;
    event.kind = e.kind;
    event.structure = e.structure;
    lines.push_back(logsim::console_line(event));
  }
  return lines;
}

/// Job lines of the context (ground-truth trace, else the loaded job log).
std::vector<std::string> job_lines_of(const StudyContext& context) {
  if (context.truth) return logsim::emit_job_log(context.truth->trace);
  std::vector<std::string> lines;
  lines.reserve(context.job_log.size());
  for (const auto& rec : context.job_log) lines.push_back(logsim::job_log_line(rec));
  return lines;
}

}  // namespace

void write_dataset(const StudyContext& context, const std::filesystem::path& dir,
                   DatasetFormat format) {
  fs::create_directories(dir);

  // Both formats round-trip doubles through the text serialization, so a
  // text dataset and a binary dataset of the same context load into
  // byte-identical contexts (the text path quantizes at write time; the
  // binary path must not keep more precision than that).
  const bool have_jobs = context.truth.has_value() || !context.job_log.empty();
  const bool have_smi = context.truth.has_value() || context.has(kSnapshot);

  std::vector<std::string> manifest = {
      std::string{ingest::kDatasetManifestHeader},
      "period_begin " + std::to_string(context.period.begin),
      "period_end " + std::to_string(context.period.end),
      "accounting_from " + std::to_string(context.accounting_from),
  };
  const auto claim = [&](std::string_view name) {
    const auto sum = ingest::content_checksum(read_all(dir / name));
    manifest.push_back("checksum " + std::string{name} + ' ' + ingest::checksum_hex(sum));
  };

  if (format == DatasetFormat::kText) {
    atomic_write_lines(dir / "console.log", console_lines_of(context));
    claim("console.log");
    if (have_jobs) {
      atomic_write_lines(dir / "jobs.log", job_lines_of(context));
      claim("jobs.log");
    }
    if (have_smi) {
      atomic_write_text(dir / "smi_sweep.txt", logsim::smi_sweep_text(context.snapshot));
      claim("smi_sweep.txt");
    }
  } else {
    tdf::TdfDataset data;
    data.period_begin = context.period.begin;
    data.period_end = context.period.end;
    data.accounting_from = context.accounting_from;
    data.times.reserve(context.events.size());
    data.nodes.reserve(context.events.size());
    data.kinds.reserve(context.events.size());
    data.structures.reserve(context.events.size());
    for (const auto& e : context.events) {
      data.times.push_back(e.time);
      data.nodes.push_back(e.node);
      data.kinds.push_back(e.kind);
      data.structures.push_back(e.structure);
    }
    if (have_jobs) {
      data.has_jobs = true;
      for (const auto& line : job_lines_of(context)) {
        if (const auto rec = logsim::parse_job_log_line(line)) data.jobs.push_back(*rec);
      }
    }
    if (have_smi) {
      data.has_smi = true;
      const auto sweep = logsim::parse_smi_sweep_text(logsim::smi_sweep_text(context.snapshot));
      data.snapshot.taken_at = sweep.taken_at;
      data.snapshot.records = sweep.records;
    }
    tdf::write_tdf(data, dir / std::string{tdf::kTdfFileName});
    claim(tdf::kTdfFileName);
  }

  // Manifest last: until it lands (atomically), a crashed writer leaves a
  // directory without integrity claims rather than one with stale claims.
  atomic_write_lines(dir / "manifest.txt", manifest);
}

}  // namespace titan::study
