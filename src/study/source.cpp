#include "study/source.hpp"

#include <charconv>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "analysis/events_view.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"

namespace titan::study {

namespace {

constexpr std::string_view kManifestHeader = "titanrel-dataset v1";

/// "key <integer>" manifest line; false when the key does not match or
/// the value is malformed.
bool parse_manifest_line(std::string_view line, std::string_view key, stats::TimeSec& out) {
  if (!line.starts_with(key)) return false;
  auto rest = line.substr(key.size());
  if (rest.empty() || rest.front() != ' ') return false;
  rest.remove_prefix(1);
  stats::TimeSec value = 0;
  const auto result = std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (result.ec != std::errc{} || result.ptr != rest.data() + rest.size()) return false;
  out = value;
  return true;
}

}  // namespace

StudyContext SimulatedSource::load() const {
  StudyContext context;
  context.truth = core::run_study(config_);
  const auto& truth = *context.truth;

  context.period = truth.config.period;
  context.accounting_from = truth.config.campaign.timeline.new_driver;
  context.events = analysis::as_parsed(truth.events);
  context.frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{context.events}, &truth.fleet.ledger());
  context.truth_frame = analysis::EventFrame::build(std::span<const xid::Event>{truth.events},
                                                    &truth.fleet.ledger());
  context.snapshot = truth.final_snapshot;

  context.load_stats.console_lines = truth.console_log.size();
  context.load_stats.job_lines = truth.trace.jobs().size();
  context.load_stats.smi_blocks = truth.final_snapshot.records.size();

  context.capabilities = kEvents | kLedger | kTrace | kGroundTruth | kStrikes;
  if (truth.config.take_final_snapshot) context.capabilities |= kSnapshot;
  return context;
}

StudyContext DatasetSource::load() const {
  const auto console_path = dir_ / "console.log";
  if (!std::filesystem::exists(console_path)) {
    throw std::runtime_error{"no dataset at " + dir_.string() + " (missing console.log)"};
  }

  StudyContext context;
  const auto lines = read_lines(console_path);
  auto parsed = parse::parse_console_log(lines);
  context.load_stats.console_lines = lines.size();
  context.load_stats.malformed_lines = parsed.malformed_lines;
  context.load_stats.unrelated_lines = parsed.unrelated_lines;
  context.events = std::move(parsed.events);
  if (context.events.empty()) {
    throw std::runtime_error{"dataset at " + dir_.string() + " contains no console events"};
  }
  context.frame =
      analysis::EventFrame::build(std::span<const parse::ParsedEvent>{context.events});
  context.capabilities = kEvents;

  // Manifest: the study window and accounting cutoff the producer used.
  // Without one (foreign datasets), fall back to the event stream's span.
  bool have_begin = false;
  bool have_end = false;
  bool have_accounting = false;
  for (const auto& line : read_lines(dir_ / "manifest.txt")) {
    have_begin = have_begin || parse_manifest_line(line, "period_begin", context.period.begin);
    have_end = have_end || parse_manifest_line(line, "period_end", context.period.end);
    have_accounting =
        have_accounting || parse_manifest_line(line, "accounting_from", context.accounting_from);
  }
  if (!have_begin) context.period.begin = context.events.front().time;
  if (!have_end) context.period.end = context.events.back().time + 1;
  if (!have_accounting) context.accounting_from = context.period.begin;

  for (const auto& line : read_lines(dir_ / "jobs.log")) {
    ++context.load_stats.job_lines;
    if (const auto record = logsim::parse_job_log_line(line)) {
      context.job_log.push_back(*record);
    } else {
      ++context.load_stats.malformed_job_lines;
    }
  }

  if (const auto sweep_text = read_all(dir_ / "smi_sweep.txt"); !sweep_text.empty()) {
    auto sweep = logsim::parse_smi_sweep_text(sweep_text);
    context.snapshot.taken_at = sweep.taken_at;
    context.snapshot.records = std::move(sweep.records);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.load_stats.malformed_smi_blocks = sweep.malformed_blocks;
    context.capabilities |= kSnapshot;
  }
  return context;
}

void write_dataset(const StudyContext& context, const std::filesystem::path& dir) {
  if (!context.truth) {
    throw std::logic_error{"write_dataset: context carries no ground truth to serialize"};
  }
  const auto& truth = *context.truth;
  std::filesystem::create_directories(dir);

  write_lines(dir / "console.log", truth.console_log);
  write_lines(dir / "jobs.log", logsim::emit_job_log(truth.trace));
  write_text(dir / "smi_sweep.txt", logsim::smi_sweep_text(context.snapshot));

  const std::vector<std::string> manifest = {
      std::string{kManifestHeader},
      "period_begin " + std::to_string(context.period.begin),
      "period_end " + std::to_string(context.period.end),
      "accounting_from " + std::to_string(context.accounting_from),
  };
  write_lines(dir / "manifest.txt", manifest);
}

}  // namespace titan::study
