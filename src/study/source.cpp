#include "study/source.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "analysis/events_view.hpp"
#include "ckpt/study_ckpt.hpp"
#include "faulttest/faulttest.hpp"
#include "logsim/console.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"
#include "study/serialize_detail.hpp"
#include "tdf/tdf.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;
using ingest::IngestPolicy;
using ingest::IngestReport;
using ingest::SalvageAction;
using ingest::TriageCode;

/// Record a whole-file finding; under kStrict a fatal code throws
/// IngestError naming the file instead.
void triage_file(IngestPolicy policy, IngestReport& report, std::string_view file,
                 TriageCode code, SalvageAction action, std::string_view detail) {
  if (policy == IngestPolicy::kStrict && ingest::fatal_in_strict(code)) {
    throw ingest::IngestError{std::string{file}, 0, code, detail};
  }
  report.add(file, 0, code, action, detail);
}

/// Resolve which fleet profile a loaded context runs under, validating
/// the dataset's recording (when present) against the profile the load
/// asked for (when given).  Any disagreement -- unknown recorded name,
/// content-hash divergence, or recorded != requested -- is
/// E_PROFILE_MISMATCH: fatal under kStrict, warn-and-adopt under
/// kSalvage (the dataset's own profile wins when it resolves; the
/// requested/default profile is the fallback otherwise).
void resolve_profile(StudyContext& context, std::string_view source_file, bool recorded,
                     std::string_view recorded_name, std::uint64_t recorded_hash,
                     const profile::FleetProfile* expected, IngestPolicy policy,
                     IngestReport& report) {
  const profile::FleetProfile* fallback = expected ? expected : &profile::k20x_titan();
  if (!recorded) {
    context.profile = fallback;
    return;
  }
  const profile::FleetProfile* dataset_profile = profile::find_profile(recorded_name);
  if (dataset_profile == nullptr) {
    triage_file(policy, report, source_file, TriageCode::kProfileMismatch,
                SalvageAction::kIgnored,
                "dataset records unknown fleet profile '" + std::string{recorded_name} +
                    "' (this build knows: " + profile::profile_names() + ")");
    context.profile = fallback;
    return;
  }
  if (dataset_profile->content_hash() != recorded_hash) {
    triage_file(policy, report, source_file, TriageCode::kProfileMismatch,
                SalvageAction::kRepaired,
                "dataset profile '" + std::string{recorded_name} + "' hash " +
                    ingest::checksum_hex(recorded_hash) +
                    " disagrees with this build's " +
                    ingest::checksum_hex(dataset_profile->content_hash()));
  } else if (expected != nullptr && expected != dataset_profile) {
    triage_file(policy, report, source_file, TriageCode::kProfileMismatch,
                SalvageAction::kRepaired,
                "dataset was written under profile '" + std::string{recorded_name} +
                    "' but the load requested '" + std::string{expected->name} + "'");
  }
  context.profile = dataset_profile;
}

/// Verify every checksum the manifest claims against on-disk bytes.
/// A claimed-but-missing file and a content mismatch are both integrity
/// findings (fatal under kStrict).  With `skip_tdf`, `.tdf` container
/// claims are presence-checked but not hashed: a TDF container
/// self-validates every byte it decodes (table + per-segment FNV-1a), and
/// hashing full contents here would read each container twice on the load
/// fast path -- and force a whole-file read of containers the streaming
/// path deliberately never materializes.
void verify_checksums(const fs::path& dir, const ingest::ManifestIngest& manifest,
                      IngestPolicy policy, IngestReport& report, bool skip_tdf = false) {
  for (const auto& [name, expected] : manifest.checksums) {
    const auto path = dir / name;
    if (skip_tdf && name.ends_with(".tdf") && fs::exists(path)) continue;
    if (!fs::exists(path)) {
      // A missing shard container is its own crash-state class: the
      // roster the manifest promised is incomplete, which is what a
      // writer killed between shard commits leaves behind.
      const bool shard = name.starts_with("dataset.shard-") && name.ends_with(".tdf");
      triage_file(policy, report, name,
                  shard ? TriageCode::kPartialShardSet : TriageCode::kFileMissing,
                  SalvageAction::kIgnored,
                  shard ? "manifest claims this shard container but it is missing"
                        : "manifest claims a checksum for this file but it is missing");
      continue;
    }
    const auto actual = ingest::content_checksum(read_all(path));
    if (actual != expected) {
      triage_file(policy, report, name, TriageCode::kChecksumMismatch, SalvageAction::kIgnored,
                  "manifest records " + ingest::checksum_hex(expected) + ", content hashes to " +
                      ingest::checksum_hex(actual));
    }
  }
}

/// Ingest manifest.txt when present, verifying its checksum claims.
ingest::ManifestIngest load_manifest(const fs::path& dir, IngestPolicy policy,
                                     IngestReport& report, bool skip_tdf = false) {
  ingest::ManifestIngest manifest;
  const auto manifest_path = dir / "manifest.txt";
  if (fs::exists(manifest_path)) {
    manifest = ingest::ingest_manifest_text(read_all(manifest_path), "manifest.txt", policy,
                                            report);
    verify_checksums(dir, manifest, policy, report, skip_tdf);
  }
  return manifest;
}

/// The binary load path: mmap dataset.tdf, decode its columns, and build
/// the EventFrame straight from them (no text parsing, no ParsedEvent
/// intermediate for the frame).
StudyContext load_binary(const fs::path& dir, const fs::path& tdf_path, IngestPolicy policy,
                         IngestReport& report, const profile::FleetProfile* expected) {
  const auto manifest = load_manifest(dir, policy, report, /*skip_tdf=*/true);

  auto data = tdf::read_tdf(tdf_path, policy, report);
  if (data.times.empty()) {
    throw ingest::IngestError{std::string{tdf::kTdfFileName}, 0, TriageCode::kNoEvents,
                              "dataset at " + dir.string() + " contains no events"};
  }

  StudyContext context;
  context.frame = analysis::EventFrame::from_columns(data.times, data.nodes, data.kinds,
                                                     data.structures);
  // The row view is still materialized (some kernels and the differential
  // tests consume it), but from decoded columns -- no text in the loop.
  context.events.resize(data.times.size());
  for (std::size_t i = 0; i < data.times.size(); ++i) {
    context.events[i] =
        parse::ParsedEvent{data.times[i], data.nodes[i], data.kinds[i], data.structures[i]};
  }
  context.capabilities = kEvents;

  // Study window: the container's meta segment is authoritative (it is
  // what write_dataset recorded); a manifest, when present, was already
  // cross-checked by its checksum claim on the container bytes.
  if (data.period_begin != 0 || data.period_end != 0) {
    context.period.begin = data.period_begin;
    context.period.end = data.period_end;
    context.accounting_from = data.accounting_from;
  } else {
    context.period.begin = manifest.have_begin ? manifest.begin : data.times.front();
    context.period.end = manifest.have_end ? manifest.end : data.times.back() + 1;
    context.accounting_from =
        manifest.have_accounting ? manifest.accounting : context.period.begin;
  }

  if (data.has_jobs) {
    context.load_stats.job_lines = data.jobs.size();
    context.job_log = std::move(data.jobs);
  }
  if (data.has_smi) {
    context.snapshot = std::move(data.snapshot);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.capabilities |= kSnapshot;
  }

  context.load_stats.binary = true;
  context.load_stats.tdf_segments =
      std::size_t{6} + (data.has_jobs ? 1U : 0U) + (data.has_smi ? 1U : 0U);
  std::error_code ec;
  const auto size = fs::file_size(tdf_path, ec);
  context.load_stats.tdf_bytes = ec ? 0 : static_cast<std::size_t>(size);

  // Profile: the container's meta recording is authoritative (a manifest
  // claim, when present, covered the container bytes via its checksum).
  resolve_profile(context, tdf::kTdfFileName, !data.profile_name.empty(), data.profile_name,
                  data.profile_hash, expected, policy, report);
  return context;
}

/// The sharded load path: open a streaming SegmentReader per shard
/// container, k-way merge their windowed event streams by (time, shard
/// index), and build the context from the merged columns.  Shard k holds
/// strictly earlier stream positions than shard k+1 at equal timestamps,
/// so the merge reproduces the unsharded order exactly -- the resulting
/// context is byte-identical to load_binary over the equivalent
/// monolithic container, at any shard count.  Per-shard resident decode
/// state is one window, so shard containers beyond the whole-file read
/// cap stream fine.
StudyContext load_sharded(const fs::path& dir, IngestPolicy policy, IngestReport& report,
                          const profile::FleetProfile* expected) {
  const auto manifest = load_manifest(dir, policy, report, /*skip_tdf=*/true);

  // Shard roster: the manifest's `shards N` claim when present, else the
  // contiguous run of dataset.shard-K.tdf files starting at 0.
  std::size_t shard_count = 0;
  if (manifest.have_shards) {
    shard_count = static_cast<std::size_t>(manifest.shards);
  } else {
    while (fs::exists(dir / tdf::shard_file_name(shard_count))) ++shard_count;
  }

  std::vector<tdf::SegmentReader> readers;
  readers.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const auto name = tdf::shard_file_name(s);
    const auto path = dir / name;
    if (!fs::exists(path)) {
      // Fatal under either policy: a missing slice of the event stream
      // cannot be salvaged around without silently dropping its events.
      throw ingest::IngestError{name, 0, TriageCode::kPartialShardSet,
                                "sharded dataset claims " + std::to_string(shard_count) +
                                    " shards but shard " + std::to_string(s) + " is missing"};
    }
    readers.emplace_back(path, policy, report);
  }

  // Every shard must describe the same study window; shard 0 is the
  // reference and disagreement names the odd shard out.
  for (std::size_t s = 1; s < readers.size(); ++s) {
    if (readers[s].period_begin() != readers[0].period_begin() ||
        readers[s].period_end() != readers[0].period_end() ||
        readers[s].accounting_from() != readers[0].accounting_from()) {
      throw ingest::IngestError{readers[s].file_name(), 0, TriageCode::kTdfSegmentCorrupt,
                                "meta study window disagrees with " + readers[0].file_name()};
    }
    if (readers[s].profile_name() != readers[0].profile_name() ||
        readers[s].profile_hash() != readers[0].profile_hash()) {
      throw ingest::IngestError{readers[s].file_name(), 0, TriageCode::kTdfSegmentCorrupt,
                                "meta fleet profile disagrees with " + readers[0].file_name()};
    }
  }

  std::uint64_t total = 0;
  for (const auto& r : readers) total += r.event_count();
  if (total == 0) {
    throw ingest::IngestError{tdf::shard_file_name(0), 0, TriageCode::kNoEvents,
                              "sharded dataset at " + dir.string() + " contains no events"};
  }

  std::vector<stats::TimeSec> times;
  std::vector<topology::NodeId> nodes;
  std::vector<xid::ErrorKind> kinds;
  std::vector<xid::MemoryStructure> structures;
  times.reserve(static_cast<std::size_t>(total));
  nodes.reserve(static_cast<std::size_t>(total));
  kinds.reserve(static_cast<std::size_t>(total));
  structures.reserve(static_cast<std::size_t>(total));

  struct ShardCursor {
    tdf::EventWindow window;
    std::size_t pos = 0;
  };
  std::vector<ShardCursor> cursors(readers.size());
  // True when the cursor points at a decoded row (refilling the window
  // from the reader as needed).
  const auto ready = [&](std::size_t s) -> bool {
    auto& cur = cursors[s];
    if (cur.pos < cur.window.size()) return true;
    cur.pos = 0;
    return readers[s].next_window(cur.window) > 0;
  };

  struct Head {
    stats::TimeSec time = 0;
    std::uint32_t shard = 0;
  };
  const auto later = [](const Head& a, const Head& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap{later};
  for (std::size_t s = 0; s < readers.size(); ++s) {
    if (ready(s)) {
      heap.push(Head{cursors[s].window.times[0], static_cast<std::uint32_t>(s)});
    }
  }
  while (!heap.empty()) {
    const Head top = heap.top();
    heap.pop();
    auto& cur = cursors[top.shard];
    times.push_back(cur.window.times[cur.pos]);
    nodes.push_back(cur.window.nodes[cur.pos]);
    kinds.push_back(cur.window.kinds[cur.pos]);
    structures.push_back(cur.window.structures[cur.pos]);
    ++cur.pos;
    if (ready(top.shard)) {
      heap.push(Head{cur.window.times[cur.pos], top.shard});
    }
  }

  StudyContext context;
  context.frame = analysis::EventFrame::from_columns(times, nodes, kinds, structures);
  context.events.resize(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    context.events[i] = parse::ParsedEvent{times[i], nodes[i], kinds[i], structures[i]};
  }
  context.capabilities = kEvents;

  // Study window: the shards' (agreeing) meta segments are authoritative,
  // same precedence as the monolithic path.
  if (readers[0].period_begin() != 0 || readers[0].period_end() != 0) {
    context.period.begin = readers[0].period_begin();
    context.period.end = readers[0].period_end();
    context.accounting_from = readers[0].accounting_from();
  } else {
    context.period.begin = manifest.have_begin ? manifest.begin : times.front();
    context.period.end = manifest.have_end ? manifest.end : times.back() + 1;
    context.accounting_from =
        manifest.have_accounting ? manifest.accounting : context.period.begin;
  }

  // Side artifacts ride in whichever shard carries the segment (the
  // writers put them in the last).
  for (auto& reader : readers) {
    if (reader.has_jobs()) {
      std::vector<logsim::JobLogRecord> jobs;
      if (reader.read_jobs(jobs)) {
        context.load_stats.job_lines = jobs.size();
        context.job_log = std::move(jobs);
      }
    }
    if (reader.has_smi()) {
      logsim::SmiSnapshot snapshot;
      if (reader.read_smi(snapshot)) {
        context.snapshot = std::move(snapshot);
        context.load_stats.smi_blocks = context.snapshot.records.size();
        context.capabilities |= kSnapshot;
      }
    }
  }

  context.load_stats.binary = true;
  context.load_stats.shards = readers.size();
  for (const auto& reader : readers) {
    context.load_stats.tdf_segments += reader.segment_count();
    context.load_stats.tdf_bytes += static_cast<std::size_t>(reader.file_bytes());
  }

  resolve_profile(context, readers[0].file_name(), !readers[0].profile_name().empty(),
                  readers[0].profile_name(), readers[0].profile_hash(), expected, policy,
                  report);
  return context;
}

StudyContext load_text(const fs::path& dir, IngestPolicy policy, IngestReport& report,
                       const profile::FleetProfile* expected) {
  const auto console_path = dir / "console.log";
  if (!fs::exists(console_path)) {
    // Fatal under either policy: with no console log there is nothing to
    // salvage a study from.
    throw ingest::IngestError{"console.log", 0, TriageCode::kFileMissing,
                              "no dataset at " + dir.string()};
  }

  // Manifest first: the producer's claims (study window, accounting
  // cutoff, content checksums) gate everything that follows.
  const auto manifest = load_manifest(dir, policy, report);

  StudyContext context;
  auto console = ingest::ingest_console_text(read_all(console_path), "console.log", policy,
                                             report);
  context.load_stats.console_lines = console.lines;
  context.load_stats.malformed_lines = console.malformed;
  context.load_stats.unrelated_lines = console.unrelated;
  context.events = std::move(console.events);
  if (context.events.empty()) {
    throw ingest::IngestError{"console.log", 0, TriageCode::kNoEvents,
                              "dataset at " + dir.string() + " contains no console events"};
  }
  context.frame =
      analysis::EventFrame::build(std::span<const parse::ParsedEvent>{context.events});
  context.capabilities = kEvents;

  // Study window: manifest claims, else the event stream's span (foreign
  // datasets without a manifest).
  context.period.begin = manifest.have_begin ? manifest.begin : context.events.front().time;
  context.period.end = manifest.have_end ? manifest.end : context.events.back().time + 1;
  context.accounting_from =
      manifest.have_accounting ? manifest.accounting : context.period.begin;

  if (const auto jobs_path = dir / "jobs.log"; fs::exists(jobs_path)) {
    auto jobs = ingest::ingest_job_text(read_all(jobs_path), "jobs.log", policy, report);
    context.load_stats.job_lines = jobs.lines;
    context.load_stats.malformed_job_lines = jobs.malformed;
    context.job_log = std::move(jobs.records);
  }

  if (const auto sweep_text = read_all(dir / "smi_sweep.txt"); !sweep_text.empty()) {
    auto sweep = ingest::ingest_smi_text(sweep_text, "smi_sweep.txt", policy, report);
    context.snapshot.taken_at = sweep.taken_at;
    context.snapshot.records = std::move(sweep.records);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.load_stats.malformed_smi_blocks = sweep.malformed_blocks;
    context.capabilities |= kSnapshot;
  }

  resolve_profile(context, "manifest.txt", manifest.have_profile, manifest.profile_name,
                  manifest.profile_hash, expected, policy, report);
  return context;
}

/// Crash-state gate, run before any artifact is parsed.  Two findings:
///
///   * Orphan *.tmp files -- a writer was killed mid-atomic-write.
///     Fatal under kStrict (E_ORPHAN_TMP); under kSalvage each orphan is
///     quarantined (renamed aside with a .quarantined suffix) and
///     recorded, then the load proceeds on the committed artifacts.
///   * A study.ckpt with no manifest.txt -- generation died between
///     artifacts and the commit point.  Fatal under BOTH policies: the
///     artifacts present may be an arbitrary prefix of the dataset, and
///     "salvaging" them would silently study a partial campaign.  The
///     remedy is resuming the generator, not loading harder.
void gate_crash_state(const fs::path& dir, IngestPolicy policy, IngestReport& report) {
  std::vector<fs::path> orphans;
  std::error_code ec;
  for (fs::directory_iterator it{dir, ec}, end; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".tmp") orphans.push_back(it->path());
  }
  std::sort(orphans.begin(), orphans.end());  // deterministic report order
  for (const auto& orphan : orphans) {
    const auto name = orphan.filename().string();
    triage_file(policy, report, name, TriageCode::kOrphanTmp, SalvageAction::kQuarantined,
                "leftover tmp file from an interrupted atomic write; quarantined as " +
                    name + ".quarantined");
    std::error_code rename_ec;
    fs::rename(orphan, orphan.string() + ".quarantined", rename_ec);
  }
  if (fs::exists(dir / ckpt::kStudyCheckpointFileName) && !fs::exists(dir / "manifest.txt")) {
    throw ingest::IngestError{
        std::string{ckpt::kStudyCheckpointFileName}, 0, TriageCode::kCkptIncomplete,
        "generation checkpoint present but no committed manifest: the dataset write "
        "was interrupted; resume the generator (--resume) instead of loading"};
  }
}

}  // namespace

StudyContext SimulatedSource::load() const {
  StudyContext context;
  context.truth = core::run_study(config_);
  const auto& truth = *context.truth;

  context.profile = truth.config.profile;
  context.period = truth.config.period;
  context.accounting_from = truth.config.campaign.timeline.new_driver;
  context.events = analysis::as_parsed(truth.events);
  context.frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{context.events}, &truth.fleet.ledger());
  context.truth_frame = analysis::EventFrame::build(std::span<const xid::Event>{truth.events},
                                                    &truth.fleet.ledger());
  context.snapshot = truth.final_snapshot;

  context.load_stats.console_lines = truth.console_log.size();
  context.load_stats.job_lines = truth.trace.jobs().size();
  context.load_stats.smi_blocks = truth.final_snapshot.records.size();

  context.capabilities = kEvents | kLedger | kTrace | kGroundTruth | kStrikes;
  if (truth.config.take_final_snapshot) context.capabilities |= kSnapshot;
  return context;
}

StudyContext DatasetSource::load() const {
  IngestReport report{policy_};
  gate_crash_state(dir_, policy_, report);

  // A binary container takes precedence: it is the format written for
  // exactly this load path (mmap + columnar decode).  A sharded layout
  // (dataset.shard-0.tdf ...) comes next; text artifacts are the fallback.
  const auto tdf_path = dir_ / std::string{tdf::kTdfFileName};
  StudyContext context =
      fs::exists(tdf_path)
          ? load_binary(dir_, tdf_path, policy_, report, expected_profile_)
      : fs::exists(dir_ / tdf::shard_file_name(0))
          ? load_sharded(dir_, policy_, report, expected_profile_)
          : load_text(dir_, policy_, report, expected_profile_);

  // Only salvage loads carry the triage record into the report pipeline;
  // a strict load that got this far saw nothing fatal, and omitting the
  // (possibly benign-finding-bearing) report keeps clean-input study
  // reports byte-identical to an ingest-unaware build.
  if (policy_ == IngestPolicy::kSalvage) context.ingest_report = std::move(report);
  return context;
}

namespace detail {

std::vector<std::string> console_lines_of(const StudyContext& context) {
  if (context.truth) return context.truth->console_log;
  std::vector<std::string> lines;
  lines.reserve(context.events.size());
  for (const auto& e : context.events) {
    xid::Event event;
    event.time = e.time;
    event.node = e.node;
    event.kind = e.kind;
    event.structure = e.structure;
    lines.push_back(logsim::console_line(event));
  }
  return lines;
}

std::vector<std::string> job_lines_of(const StudyContext& context) {
  if (context.truth) return logsim::emit_job_log(context.truth->trace);
  std::vector<std::string> lines;
  lines.reserve(context.job_log.size());
  for (const auto& rec : context.job_log) lines.push_back(logsim::job_log_line(rec));
  return lines;
}

std::vector<logsim::JobLogRecord> quantized_jobs(const StudyContext& context) {
  std::vector<logsim::JobLogRecord> jobs;
  for (const auto& line : job_lines_of(context)) {
    if (const auto rec = logsim::parse_job_log_line(line)) jobs.push_back(*rec);
  }
  return jobs;
}

logsim::SmiSnapshot quantized_smi(const logsim::SmiSnapshot& snapshot) {
  const auto sweep = logsim::parse_smi_sweep_text(logsim::smi_sweep_text(snapshot));
  logsim::SmiSnapshot out;
  out.taken_at = sweep.taken_at;
  out.records = sweep.records;
  return out;
}

}  // namespace detail

void write_dataset(const StudyContext& context, const std::filesystem::path& dir,
                   DatasetFormat format) {
  fs::create_directories(dir);

  // Intent first: with the checkpoint marker on disk, a writer killed
  // between artifacts and the manifest leaves a directory loaders reject
  // as E_CKPT_INCOMPLETE instead of silently studying a partial dataset
  // (a console.log alone is a loadable foreign dataset otherwise).  The
  // monolithic writer has no shard plan, so the marker carries
  // shard_count 0.  Rerunning write_dataset IS the resume path: every
  // artifact is rewritten idempotently and the marker removed at commit.
  ckpt::StudyCheckpoint intent;
  intent.seed = 0;
  intent.profile_name = std::string{context.profile->name};
  intent.profile_hash = context.profile->content_hash();
  intent.shard_count = 0;
  intent.card_fences = {0};
  ckpt::save_study_checkpoint(intent, dir);

  // Both formats round-trip doubles through the text serialization, so a
  // text dataset and a binary dataset of the same context load into
  // byte-identical contexts (the text path quantizes at write time; the
  // binary path must not keep more precision than that).
  const bool have_jobs = context.truth.has_value() || !context.job_log.empty();
  const bool have_smi = context.truth.has_value() || context.has(kSnapshot);

  std::vector<std::string> manifest = {
      std::string{ingest::kDatasetManifestHeader},
      "period_begin " + std::to_string(context.period.begin),
      "period_end " + std::to_string(context.period.end),
      "accounting_from " + std::to_string(context.accounting_from),
      "profile " + std::string{context.profile->name} + ' ' +
          ingest::checksum_hex(context.profile->content_hash()),
  };
  const auto claim = [&](std::string_view name) {
    const auto sum = ingest::content_checksum(read_all(dir / name));
    manifest.push_back("checksum " + std::string{name} + ' ' + ingest::checksum_hex(sum));
  };

  if (format == DatasetFormat::kText) {
    atomic_write_lines(dir / "console.log", detail::console_lines_of(context));
    claim("console.log");
    TITAN_PTP("study/write/artifact");
    if (have_jobs) {
      atomic_write_lines(dir / "jobs.log", detail::job_lines_of(context));
      claim("jobs.log");
      TITAN_PTP("study/write/artifact");
    }
    if (have_smi) {
      atomic_write_text(dir / "smi_sweep.txt", logsim::smi_sweep_text(context.snapshot));
      claim("smi_sweep.txt");
      TITAN_PTP("study/write/artifact");
    }
  } else {
    tdf::TdfDataset data;
    data.period_begin = context.period.begin;
    data.period_end = context.period.end;
    data.accounting_from = context.accounting_from;
    data.profile_name = std::string{context.profile->name};
    data.profile_hash = context.profile->content_hash();
    data.times.reserve(context.events.size());
    data.nodes.reserve(context.events.size());
    data.kinds.reserve(context.events.size());
    data.structures.reserve(context.events.size());
    for (const auto& e : context.events) {
      data.times.push_back(e.time);
      data.nodes.push_back(e.node);
      data.kinds.push_back(e.kind);
      data.structures.push_back(e.structure);
    }
    if (have_jobs) {
      data.has_jobs = true;
      data.jobs = detail::quantized_jobs(context);
    }
    if (have_smi) {
      data.has_smi = true;
      data.snapshot = detail::quantized_smi(context.snapshot);
    }
    tdf::write_tdf(data, dir / std::string{tdf::kTdfFileName});
    claim(tdf::kTdfFileName);
    TITAN_PTP("study/write/artifact");
  }

  // Manifest last: until it lands (atomically), a crashed writer leaves a
  // directory without integrity claims rather than one with stale claims.
  TITAN_PTP("study/write/pre-manifest");
  atomic_write_lines(dir / "manifest.txt", manifest);
  TITAN_PTP("study/write/committed");
  ckpt::remove_study_checkpoint(dir);
}

}  // namespace titan::study
