#include "study/source.hpp"

#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "analysis/events_view.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;
using ingest::IngestPolicy;
using ingest::IngestReport;
using ingest::SalvageAction;
using ingest::TriageCode;

/// Record a whole-file finding; under kStrict a fatal code throws
/// IngestError naming the file instead.
void triage_file(IngestPolicy policy, IngestReport& report, std::string_view file,
                 TriageCode code, SalvageAction action, std::string_view detail) {
  if (policy == IngestPolicy::kStrict && ingest::fatal_in_strict(code)) {
    throw ingest::IngestError{std::string{file}, 0, code, detail};
  }
  report.add(file, 0, code, action, detail);
}

/// Verify every checksum the manifest claims against on-disk bytes.
/// A claimed-but-missing file and a content mismatch are both integrity
/// findings (fatal under kStrict).
void verify_checksums(const fs::path& dir, const ingest::ManifestIngest& manifest,
                      IngestPolicy policy, IngestReport& report) {
  for (const auto& [name, expected] : manifest.checksums) {
    const auto path = dir / name;
    if (!fs::exists(path)) {
      triage_file(policy, report, name, TriageCode::kFileMissing, SalvageAction::kIgnored,
                  "manifest claims a checksum for this file but it is missing");
      continue;
    }
    const auto actual = ingest::content_checksum(read_all(path));
    if (actual != expected) {
      triage_file(policy, report, name, TriageCode::kChecksumMismatch, SalvageAction::kIgnored,
                  "manifest records " + ingest::checksum_hex(expected) + ", content hashes to " +
                      ingest::checksum_hex(actual));
    }
  }
}

}  // namespace

StudyContext SimulatedSource::load() const {
  StudyContext context;
  context.truth = core::run_study(config_);
  const auto& truth = *context.truth;

  context.period = truth.config.period;
  context.accounting_from = truth.config.campaign.timeline.new_driver;
  context.events = analysis::as_parsed(truth.events);
  context.frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{context.events}, &truth.fleet.ledger());
  context.truth_frame = analysis::EventFrame::build(std::span<const xid::Event>{truth.events},
                                                    &truth.fleet.ledger());
  context.snapshot = truth.final_snapshot;

  context.load_stats.console_lines = truth.console_log.size();
  context.load_stats.job_lines = truth.trace.jobs().size();
  context.load_stats.smi_blocks = truth.final_snapshot.records.size();

  context.capabilities = kEvents | kLedger | kTrace | kGroundTruth | kStrikes;
  if (truth.config.take_final_snapshot) context.capabilities |= kSnapshot;
  return context;
}

StudyContext DatasetSource::load() const {
  IngestReport report{policy_};

  const auto console_path = dir_ / "console.log";
  if (!fs::exists(console_path)) {
    // Fatal under either policy: with no console log there is nothing to
    // salvage a study from.
    throw ingest::IngestError{"console.log", 0, TriageCode::kFileMissing,
                              "no dataset at " + dir_.string()};
  }

  // Manifest first: the producer's claims (study window, accounting
  // cutoff, content checksums) gate everything that follows.
  ingest::ManifestIngest manifest;
  const auto manifest_path = dir_ / "manifest.txt";
  if (fs::exists(manifest_path)) {
    manifest = ingest::ingest_manifest_text(read_all(manifest_path), "manifest.txt", policy_,
                                            report);
    verify_checksums(dir_, manifest, policy_, report);
  }

  StudyContext context;
  auto console = ingest::ingest_console_text(read_all(console_path), "console.log", policy_,
                                             report);
  context.load_stats.console_lines = console.lines;
  context.load_stats.malformed_lines = console.malformed;
  context.load_stats.unrelated_lines = console.unrelated;
  context.events = std::move(console.events);
  if (context.events.empty()) {
    throw ingest::IngestError{"console.log", 0, TriageCode::kNoEvents,
                              "dataset at " + dir_.string() + " contains no console events"};
  }
  context.frame =
      analysis::EventFrame::build(std::span<const parse::ParsedEvent>{context.events});
  context.capabilities = kEvents;

  // Study window: manifest claims, else the event stream's span (foreign
  // datasets without a manifest).
  context.period.begin = manifest.have_begin ? manifest.begin : context.events.front().time;
  context.period.end = manifest.have_end ? manifest.end : context.events.back().time + 1;
  context.accounting_from =
      manifest.have_accounting ? manifest.accounting : context.period.begin;

  if (const auto jobs_path = dir_ / "jobs.log"; fs::exists(jobs_path)) {
    auto jobs = ingest::ingest_job_text(read_all(jobs_path), "jobs.log", policy_, report);
    context.load_stats.job_lines = jobs.lines;
    context.load_stats.malformed_job_lines = jobs.malformed;
    context.job_log = std::move(jobs.records);
  }

  if (const auto sweep_text = read_all(dir_ / "smi_sweep.txt"); !sweep_text.empty()) {
    auto sweep = ingest::ingest_smi_text(sweep_text, "smi_sweep.txt", policy_, report);
    context.snapshot.taken_at = sweep.taken_at;
    context.snapshot.records = std::move(sweep.records);
    context.load_stats.smi_blocks = context.snapshot.records.size();
    context.load_stats.malformed_smi_blocks = sweep.malformed_blocks;
    context.capabilities |= kSnapshot;
  }

  // Only salvage loads carry the triage record into the report pipeline;
  // a strict load that got this far saw nothing fatal, and omitting the
  // (possibly benign-finding-bearing) report keeps clean-input study
  // reports byte-identical to an ingest-unaware build.
  if (policy_ == IngestPolicy::kSalvage) context.ingest_report = std::move(report);
  return context;
}

void write_dataset(const StudyContext& context, const std::filesystem::path& dir) {
  if (!context.truth) {
    throw std::logic_error{"write_dataset: context carries no ground truth to serialize"};
  }
  const auto& truth = *context.truth;
  std::filesystem::create_directories(dir);

  write_lines(dir / "console.log", truth.console_log);
  write_lines(dir / "jobs.log", logsim::emit_job_log(truth.trace));
  write_text(dir / "smi_sweep.txt", logsim::smi_sweep_text(context.snapshot));

  std::vector<std::string> manifest = {
      std::string{ingest::kDatasetManifestHeader},
      "period_begin " + std::to_string(context.period.begin),
      "period_end " + std::to_string(context.period.end),
      "accounting_from " + std::to_string(context.accounting_from),
  };
  // Content checksums over the bytes just written, so any later mutation
  // of the files is detectable at load.
  for (const std::string_view name : {"console.log", "jobs.log", "smi_sweep.txt"}) {
    const auto sum = ingest::content_checksum(read_all(dir / name));
    manifest.push_back("checksum " + std::string{name} + ' ' + ingest::checksum_hex(sum));
  }
  write_lines(dir / "manifest.txt", manifest);
}

}  // namespace titan::study
