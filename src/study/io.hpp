// Small file helpers shared by the dataset writer/reader and the example
// CLIs (previously duplicated inside the examples).  All text is plain
// newline-terminated UTF-8; reads never throw (missing files yield empty
// results -- callers check existence where it matters).
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace titan::study {

/// Read a text file line by line (without terminators; a trailing '\r'
/// from CRLF endings is stripped).  Missing or unreadable files yield an
/// empty vector.
[[nodiscard]] std::vector<std::string> read_lines(const std::filesystem::path& path);

/// Slurp a whole file.  Missing or unreadable files yield "".
[[nodiscard]] std::string read_all(const std::filesystem::path& path);

/// Write lines, each terminated with '\n'.  Throws std::runtime_error
/// when the file cannot be opened.
void write_lines(const std::filesystem::path& path, std::span<const std::string> lines);

/// Write raw text.  Throws std::runtime_error when the file cannot be
/// opened.
void write_text(const std::filesystem::path& path, std::string_view text);

}  // namespace titan::study
