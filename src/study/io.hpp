// Small file helpers shared by the dataset writer/reader and the example
// CLIs (previously duplicated inside the examples).  All text is plain
// newline-terminated UTF-8; reads never throw on *missing* files (empty
// results -- callers check existence where it matters), but a file beyond
// kMaxIngestFileBytes throws ingest::IngestError with E_FILE_TOO_LARGE:
// silently truncating a 5 GiB log to what size_t/std::streamsize happens
// to hold would be a corruption of its own.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace titan::study {

/// Single-file ingest size cap (4 GiB).  Anything larger than this is not
/// a titanrel dataset artifact and is rejected with a named triage code
/// (E_FILE_TOO_LARGE) instead of being silently clamped.
inline constexpr std::uint64_t kMaxIngestFileBytes = 4ULL * 1024 * 1024 * 1024;

/// Read a text file line by line (without terminators; a trailing '\r'
/// from CRLF endings is stripped).  Missing or unreadable files yield an
/// empty vector; files beyond kMaxIngestFileBytes throw IngestError.
[[nodiscard]] std::vector<std::string> read_lines(const std::filesystem::path& path);

/// Slurp a whole file (capacity reserved from the on-disk size).  Missing
/// or unreadable files yield ""; files beyond kMaxIngestFileBytes throw
/// IngestError.
[[nodiscard]] std::string read_all(const std::filesystem::path& path);

/// Write lines, each terminated with '\n'.  Throws std::runtime_error
/// when the file cannot be opened.
void write_lines(const std::filesystem::path& path, std::span<const std::string> lines);

/// Write raw text.  Throws std::runtime_error when the file cannot be
/// opened.
void write_text(const std::filesystem::path& path, std::string_view text);

/// Atomic variant of write_text: write `path.tmp`, fsync, rename (via
/// faulttest::atomic_write_file, which carries the crash kill points).
/// The destination is never observable half-written; on an ordinary
/// failure the tmp file is removed and std::runtime_error thrown, while
/// a faulttest::KillPointError deliberately leaves the orphan tmp behind
/// as the crash evidence loaders must triage (E_ORPHAN_TMP).
void atomic_write_text(const std::filesystem::path& path, std::string_view text);

/// Atomic variant of write_lines (same tmp + fsync + rename protocol).
void atomic_write_lines(const std::filesystem::path& path,
                        std::span<const std::string> lines);

}  // namespace titan::study
