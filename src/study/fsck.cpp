#include "study/fsck.hpp"

#include <algorithm>
#include <string_view>
#include <system_error>
#include <utility>

#include "ckpt/study_ckpt.hpp"
#include "study/io.hpp"
#include "tdf/tdf.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;
using ingest::TriageCode;

void add_finding(FsckResult& out, std::string file, TriageCode code, std::string detail) {
  out.findings.push_back(FsckFinding{std::move(file), code, std::move(detail)});
}

/// Orphan tmp files (and quarantined copies a salvage load set aside):
/// evidence of an interrupted atomic write.
void check_orphans(const fs::path& dir, FsckResult& out) {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it{dir, ec}, end; !ec && it != end; it.increment(ec)) {
    const auto ext = it->path().extension();
    if (ext == ".tmp" || ext == ".quarantined") {
      names.push_back(it->path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  for (auto& name : names) {
    add_finding(out, std::move(name), TriageCode::kOrphanTmp,
                "leftover file from an interrupted atomic write");
  }
}

/// Checkpoint state: a study.ckpt must decode, and must not outlive its
/// run (present without a manifest = generation died mid-write).
void check_checkpoint(const fs::path& dir, bool have_manifest, FsckResult& out) {
  if (!fs::exists(dir / ckpt::kStudyCheckpointFileName)) return;
  ingest::IngestReport report{ingest::IngestPolicy::kSalvage};
  const auto decoded =
      ckpt::load_study_checkpoint(dir, ingest::IngestPolicy::kSalvage, report);
  for (const auto& diag : report.diagnostics()) {
    add_finding(out, diag.file, diag.code, diag.detail);
  }
  if (!have_manifest) {
    add_finding(out, std::string{ckpt::kStudyCheckpointFileName},
                TriageCode::kCkptIncomplete,
                "generation checkpoint present but no committed manifest");
  } else if (decoded) {
    add_finding(out, std::string{ckpt::kStudyCheckpointFileName}, TriageCode::kCkptIncomplete,
                "checkpoint lingers beside a committed manifest (harmless; a resumed "
                "or rerun writer removes it)");
  }
}

/// Manifest claims: parse damage, then every checksum against on-disk
/// bytes -- including the TDF containers the load fast path skips.
void check_manifest(const fs::path& dir, const ingest::ManifestIngest& manifest,
                    const ingest::IngestReport& parse_report, FsckResult& out) {
  for (const auto& diag : parse_report.diagnostics()) {
    add_finding(out, diag.file, diag.code, diag.detail);
  }
  for (const auto& [name, expected] : manifest.checksums) {
    const auto path = dir / name;
    if (!fs::exists(path)) {
      const bool shard = name.starts_with("dataset.shard-") && name.ends_with(".tdf");
      add_finding(out, name,
                  shard ? TriageCode::kPartialShardSet : TriageCode::kFileMissing,
                  shard ? "manifest claims this shard container but it is missing"
                        : "manifest claims a checksum for this file but it is missing");
      continue;
    }
    const auto actual = ingest::content_checksum(read_all(path));
    if (actual != expected) {
      add_finding(out, name, TriageCode::kChecksumMismatch,
                  "manifest records " + ingest::checksum_hex(expected) +
                      ", content hashes to " + ingest::checksum_hex(actual));
    }
  }
  // Shard roster vs the `shards N` claim: every shard in [0, N) must be
  // claimed AND present; extra shard files beyond N are orphaned slices.
  if (manifest.have_shards) {
    const auto shard_count = static_cast<std::size_t>(manifest.shards);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const auto name = tdf::shard_file_name(s);
      const bool claimed = std::any_of(
          manifest.checksums.begin(), manifest.checksums.end(),
          [&](const auto& claim) { return claim.first == name; });
      // A claimed-but-missing shard was already reported by the claim
      // walk above; only the never-claimed hole is new information here.
      if (!claimed) {
        add_finding(out, name, TriageCode::kPartialShardSet,
                    "manifest declares " + std::to_string(shard_count) +
                        " shards but carries no checksum claim for this one");
      }
    }
    for (std::size_t s = shard_count; fs::exists(dir / tdf::shard_file_name(s)); ++s) {
      add_finding(out, tdf::shard_file_name(s), TriageCode::kPartialShardSet,
                  "shard container beyond the manifest's declared count of " +
                      std::to_string(shard_count));
    }
  }
}

}  // namespace

std::string FsckResult::report_text() const {
  std::string text = "titanrel fsck\nlayout: " + layout + '\n';
  text += "findings: " + std::to_string(findings.size()) + '\n';
  for (const auto& finding : findings) {
    text += "  " + finding.file + ' ' + std::string{ingest::code_name(finding.code)} +
            ": " + finding.detail + '\n';
  }
  text += std::string{"verdict: "} + (clean() ? "clean" : "crash-state") + '\n';
  return text;
}

FsckResult fsck_dataset(const fs::path& dir) {
  FsckResult out;
  if (fs::exists(dir / std::string{tdf::kTdfFileName})) {
    out.layout = "binary";
  } else if (fs::exists(dir / tdf::shard_file_name(0))) {
    out.layout = "sharded";
  } else if (fs::exists(dir / "console.log")) {
    out.layout = "text";
  } else {
    out.layout = "none";
  }

  check_orphans(dir, out);

  const bool have_manifest = fs::exists(dir / "manifest.txt");
  check_checkpoint(dir, have_manifest, out);

  if (have_manifest) {
    ingest::IngestReport report{ingest::IngestPolicy::kSalvage};
    const auto manifest = ingest::ingest_manifest_text(
        read_all(dir / "manifest.txt"), "manifest.txt", ingest::IngestPolicy::kSalvage,
        report);
    check_manifest(dir, manifest, report, out);
  }
  return out;
}

}  // namespace titan::study
