// StudyContext: everything one reliability study runs over, built once by
// a StudySource and shared (read-only) by every analysis kernel.
//
// The context is the repo's single ingestion product: the parsed event
// stream, the EventFrame columnar index (built exactly once, with the
// fleet-ledger card join when a fleet is known), the study period, and
// whatever side artifacts the source could provide (nvidia-smi sweep,
// job accounting, simulator ground truth).  Capability bits record which
// side artifacts exist, so the AnalysisRegistry can decide -- per kernel,
// not per source type -- what is runnable.  Kernels consume only what
// their declared capabilities cover, which is what makes a simulated
// study and a dataset round-trip of the same seed produce byte-identical
// reports on the shared capability set.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include "analysis/event_frame.hpp"
#include "core/facility.hpp"
#include "ingest/triage.hpp"
#include "profile/fleet_profile.hpp"
#include "logsim/joblog.hpp"
#include "logsim/smi.hpp"
#include "parse/console.hpp"
#include "stats/calendar.hpp"

namespace titan::study {

/// What a StudyContext can feed an analysis kernel.  Sources set the
/// union of what they loaded; registry entries declare what they need.
enum Capability : unsigned {
  kEvents = 1U << 0,       ///< parsed console events + EventFrame
  kLedger = 1U << 1,       ///< frame built with the fleet-ledger card join
  kSnapshot = 1U << 2,     ///< end-of-study nvidia-smi sweep
  kTrace = 1U << 3,        ///< full job trace with node placement
  kGroundTruth = 1U << 4,  ///< truth frame with job/root attribution
  kStrikes = 1U << 5,      ///< raw SBE strike stream (simulator-only)
};

struct StudyContext {
  /// Fleet profile the data was generated (or recorded) under.  Never
  /// null; points at a process-lifetime singleton.  Analysis kernels
  /// read their kind lists, descriptions and repair policy from here.
  const profile::FleetProfile* profile = &profile::k20x_titan();

  stats::StudyPeriod period{};
  /// Retirement accounting cutoff (the paper's "only after Jan'2014"
  /// rule); the new-driver date for simulated runs, from the dataset
  /// manifest otherwise.
  stats::TimeSec accounting_from = 0;

  /// Console-recoverable event stream, time-sorted (SBEs never appear).
  std::vector<parse::ParsedEvent> events;
  /// Columnar index over `events`, built once at load.
  analysis::EventFrame frame;

  /// End-of-study nvidia-smi sweep (valid iff kSnapshot).
  logsim::SmiSnapshot snapshot;
  /// Job accounting view (dataset loads; simulated contexts use the
  /// richer trace() instead).
  std::vector<logsim::JobLogRecord> job_log;

  /// Simulator ground truth (simulated sources only).
  std::optional<core::StudyDataset> truth;
  /// Frame over ground-truth events, job/root columns populated (empty
  /// unless kGroundTruth).
  analysis::EventFrame truth_frame;

  /// Ingestion accounting, for CLI preambles.
  struct LoadStats {
    std::size_t console_lines = 0;
    std::size_t malformed_lines = 0;
    std::size_t unrelated_lines = 0;
    std::size_t job_lines = 0;
    std::size_t malformed_job_lines = 0;
    std::size_t smi_blocks = 0;
    std::size_t malformed_smi_blocks = 0;
    bool binary = false;          ///< loaded from dataset.tdf, not text logs
    std::size_t tdf_segments = 0; ///< segments decoded from the container(s)
    std::size_t tdf_bytes = 0;    ///< container size on disk (all shards)
    std::size_t shards = 0;       ///< shard containers merged (0 = monolithic)
  };
  LoadStats load_stats;

  /// Triage record of a salvage-mode dataset load (absent for strict
  /// loads and simulated sources, which keeps clean-input reports
  /// byte-identical to an ingest-unaware build).
  std::optional<ingest::IngestReport> ingest_report;

  unsigned capabilities = 0;

  /// True when every bit of `mask` is available.
  [[nodiscard]] bool has(unsigned mask) const noexcept {
    return (capabilities & mask) == mask;
  }

  /// Ground-truth job trace; throws std::logic_error without kTrace.
  [[nodiscard]] const sched::JobTrace& trace() const {
    if (!truth) throw std::logic_error{"StudyContext: no job trace (dataset-only context)"};
    return truth->trace;
  }
};

}  // namespace titan::study
