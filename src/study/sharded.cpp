#include "study/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/sharded.hpp"
#include "logsim/joblog.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"
#include "study/serialize_detail.hpp"
#include "tdf/tdf.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;

/// Encode and write one shard container atomically, recording its
/// checksum claim.  The claim hashes the encoded bytes directly -- never
/// a read-back -- so writing shards larger than the whole-file read cap
/// stays possible.
std::size_t write_shard(const fs::path& dir, std::size_t shard, const tdf::TdfDataset& data,
                        std::vector<std::string>& manifest) {
  const auto name = tdf::shard_file_name(shard);
  const auto encoded = tdf::encode_tdf(data);
  atomic_write_text(dir / name, encoded);
  manifest.push_back("checksum " + name + ' ' +
                     ingest::checksum_hex(ingest::content_checksum(encoded)));
  return encoded.size();
}

std::vector<std::string> manifest_header(stats::TimeSec begin, stats::TimeSec end,
                                         stats::TimeSec accounting_from,
                                         const profile::FleetProfile& profile,
                                         std::size_t shard_count) {
  return {
      std::string{ingest::kDatasetManifestHeader},
      "period_begin " + std::to_string(begin),
      "period_end " + std::to_string(end),
      "accounting_from " + std::to_string(accounting_from),
      "profile " + std::string{profile.name} + ' ' +
          ingest::checksum_hex(profile.content_hash()),
      "shards " + std::to_string(shard_count),
  };
}

}  // namespace

ShardedWriteStats generate_sharded_dataset(const core::FacilityConfig& config,
                                           std::size_t shard_count,
                                           const std::filesystem::path& dir) {
  core::ShardedStudy sharded{config, shard_count};  // throws on shard_count == 0
  fs::create_directories(dir);

  const stats::TimeSec accounting_from = config.campaign.timeline.new_driver;
  auto manifest = manifest_header(config.period.begin, config.period.end, accounting_from,
                                  *config.profile, shard_count);

  ShardedWriteStats out;
  out.shards = shard_count;
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto columns = sharded.shard_events(s);
    out.events += columns.size();
    out.peak_shard_events = std::max(out.peak_shard_events, columns.size());

    tdf::TdfDataset data;
    data.period_begin = config.period.begin;
    data.period_end = config.period.end;
    data.accounting_from = accounting_from;
    data.profile_name = std::string{config.profile->name};
    data.profile_hash = config.profile->content_hash();
    data.times = std::move(columns.times);
    data.nodes = std::move(columns.nodes);
    data.kinds = std::move(columns.kinds);
    data.structures = std::move(columns.structures);

    if (s + 1 == shard_count) {
      // Side artifacts ride in the last shard: the job trace is resident
      // for the whole campaign anyway, and the smi sweep needs every
      // card's end-of-campaign state (available only after the final
      // shard ran).  Both round-trip the text serialization, exactly
      // like write_dataset, so every format of one study quantizes
      // identically.
      data.has_jobs = true;
      for (const auto& line : logsim::emit_job_log(sharded.trace())) {
        if (const auto rec = logsim::parse_job_log_line(line)) data.jobs.push_back(*rec);
      }
      data.has_smi = true;
      const auto sweep =
          logsim::parse_smi_sweep_text(logsim::smi_sweep_text(sharded.final_snapshot()));
      data.snapshot.taken_at = sweep.taken_at;
      data.snapshot.records = sweep.records;
      out.jobs = data.jobs.size();
      out.smi_blocks = data.snapshot.records.size();
    }
    out.bytes += write_shard(dir, s, data, manifest);
  }

  // Manifest last (atomically): a crashed writer leaves a directory
  // without integrity claims rather than one with stale claims.
  atomic_write_lines(dir / "manifest.txt", manifest);
  return out;
}

ShardedWriteStats write_sharded_dataset(const StudyContext& context,
                                        const std::filesystem::path& dir,
                                        std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument{"write_sharded_dataset: shard_count must be positive"};
  }
  fs::create_directories(dir);

  const bool have_jobs = context.truth.has_value() || !context.job_log.empty();
  const bool have_smi = context.truth.has_value() || context.has(kSnapshot);
  auto manifest = manifest_header(context.period.begin, context.period.end,
                                  context.accounting_from, *context.profile, shard_count);

  ShardedWriteStats out;
  out.shards = shard_count;
  out.events = context.events.size();
  const std::size_t total = context.events.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Even contiguous split: the stream is time-sorted, so the loader's
    // (time, shard) merge reduces to concatenation and any bounds work.
    const std::size_t lo = total * s / shard_count;
    const std::size_t hi = total * (s + 1) / shard_count;
    out.peak_shard_events = std::max(out.peak_shard_events, hi - lo);

    tdf::TdfDataset data;
    data.period_begin = context.period.begin;
    data.period_end = context.period.end;
    data.accounting_from = context.accounting_from;
    data.profile_name = std::string{context.profile->name};
    data.profile_hash = context.profile->content_hash();
    data.times.reserve(hi - lo);
    data.nodes.reserve(hi - lo);
    data.kinds.reserve(hi - lo);
    data.structures.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& e = context.events[i];
      data.times.push_back(e.time);
      data.nodes.push_back(e.node);
      data.kinds.push_back(e.kind);
      data.structures.push_back(e.structure);
    }

    if (s + 1 == shard_count) {
      if (have_jobs) {
        data.has_jobs = true;
        data.jobs = detail::quantized_jobs(context);
        out.jobs = data.jobs.size();
      }
      if (have_smi) {
        data.has_smi = true;
        data.snapshot = detail::quantized_smi(context.snapshot);
        out.smi_blocks = data.snapshot.records.size();
      }
    }
    out.bytes += write_shard(dir, s, data, manifest);
  }

  atomic_write_lines(dir / "manifest.txt", manifest);
  return out;
}

}  // namespace titan::study
