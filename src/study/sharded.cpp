#include "study/sharded.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "ckpt/study_ckpt.hpp"
#include "core/sharded.hpp"
#include "faulttest/faulttest.hpp"
#include "ingest/triage.hpp"
#include "logsim/joblog.hpp"
#include "logsim/smi_text.hpp"
#include "study/io.hpp"
#include "study/serialize_detail.hpp"
#include "tdf/tdf.hpp"

namespace titan::study {

namespace {

namespace fs = std::filesystem;

/// Encode and write one shard container atomically, returning its seal
/// record.  The checksum claim hashes the encoded bytes directly --
/// never a read-back -- so writing shards larger than the whole-file
/// read cap stays possible.
ckpt::ShardSeal write_shard(const fs::path& dir, std::size_t shard,
                            const tdf::TdfDataset& data) {
  ckpt::ShardSeal seal;
  seal.shard = shard;
  seal.file = tdf::shard_file_name(shard);
  const auto encoded = tdf::encode_tdf(data);
  TITAN_PTP("study/shard/encoded");
  seal.checksum = ingest::content_checksum(encoded);
  seal.bytes = encoded.size();
  seal.events = data.event_count();
  seal.jobs = data.jobs.size();
  seal.smi_blocks = data.snapshot.records.size();
  atomic_write_text(dir / seal.file, encoded);
  TITAN_PTP("study/shard/sealed");
  return seal;
}

/// Fold one shard's seal into the summary stats.
void tally(ShardedWriteStats& out, const ckpt::ShardSeal& seal) {
  out.events += seal.events;
  out.peak_shard_events = std::max(out.peak_shard_events, seal.events);
  out.bytes += seal.bytes;
  out.jobs += seal.jobs;
  out.smi_blocks += seal.smi_blocks;
}

/// Remove leftover *.tmp files from crashed atomic writes, plus any
/// *.quarantined copies a salvage load set aside (resume sweep; a tmp is
/// pre-rename by construction, so removal loses nothing).
void sweep_orphan_tmps(const fs::path& dir) {
  std::error_code ec;
  for (fs::directory_iterator it{dir, ec}, end; !ec && it != end; it.increment(ec)) {
    const auto ext = it->path().extension();
    if (ext == ".tmp" || ext == ".quarantined") fs::remove(it->path(), ec);
  }
}

/// The checkpoint skeleton pinning this run's identity: seed, profile,
/// and the card-serial fences that are the per-shard RNG stream cursors.
ckpt::StudyCheckpoint checkpoint_plan(const core::FacilityConfig& config,
                                      const core::ShardedStudy& sharded) {
  ckpt::StudyCheckpoint plan;
  plan.seed = config.seed;
  plan.profile_name = std::string{config.profile->name};
  plan.profile_hash = config.profile->content_hash();
  plan.shard_count = sharded.shard_count();
  plan.card_fences.reserve(plan.shard_count + 1);
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    plan.card_fences.push_back(sharded.shard_card_range(s).first);
  }
  plan.card_fences.push_back(sharded.shard_card_range(plan.shard_count - 1).second);
  return plan;
}

/// Resumed runs must replay the SAME campaign: a checkpoint from a
/// different seed, profile or shard plan would splice streams from two
/// different studies into one dataset.
void require_plan_match(const ckpt::StudyCheckpoint& prior,
                        const ckpt::StudyCheckpoint& plan) {
  const auto fail = [](std::string_view what) {
    throw ingest::IngestError{std::string{ckpt::kStudyCheckpointFileName}, 0,
                              ingest::TriageCode::kCkptMismatch,
                              std::string{what} +
                                  " differs from the interrupted run; resume with the "
                                  "original config or start a fresh directory"};
  };
  if (prior.seed != plan.seed) fail("seed");
  if (prior.profile_name != plan.profile_name || prior.profile_hash != plan.profile_hash) {
    fail("fleet profile");
  }
  if (prior.shard_count != plan.shard_count) fail("shard count");
  if (prior.card_fences != plan.card_fences) fail("shard card-fence plan");
}

std::vector<std::string> manifest_header(stats::TimeSec begin, stats::TimeSec end,
                                         stats::TimeSec accounting_from,
                                         const profile::FleetProfile& profile,
                                         std::size_t shard_count) {
  return {
      std::string{ingest::kDatasetManifestHeader},
      "period_begin " + std::to_string(begin),
      "period_end " + std::to_string(end),
      "accounting_from " + std::to_string(accounting_from),
      "profile " + std::string{profile.name} + ' ' +
          ingest::checksum_hex(profile.content_hash()),
      "shards " + std::to_string(shard_count),
  };
}

}  // namespace

ShardedWriteStats generate_sharded_dataset(const core::FacilityConfig& config,
                                           std::size_t shard_count,
                                           const std::filesystem::path& dir,
                                           bool resume) {
  core::ShardedStudy sharded{config, shard_count};  // throws on shard_count == 0
  fs::create_directories(dir);

  auto state = checkpoint_plan(config, sharded);
  if (resume) {
    sweep_orphan_tmps(dir);
    if (fs::exists(dir / "manifest.txt")) {
      // Already committed: the manifest is the commit point, so there is
      // nothing to redo.  Recover the summary stats from a complete
      // checkpoint if one lingers (salvage decode: stale damage must not
      // fail a finished dataset), then drop it.
      ingest::IngestReport scratch{ingest::IngestPolicy::kSalvage};
      const auto prior =
          ckpt::load_study_checkpoint(dir, ingest::IngestPolicy::kSalvage, scratch);
      ckpt::remove_study_checkpoint(dir);
      ShardedWriteStats out;
      out.shards = shard_count;
      if (prior && prior->complete()) {
        for (const auto& seal : prior->sealed) tally(out, seal);
      }
      return out;
    }
    ingest::IngestReport report{ingest::IngestPolicy::kStrict};
    const auto prior =
        ckpt::load_study_checkpoint(dir, ingest::IngestPolicy::kStrict, report);
    if (prior) {
      require_plan_match(*prior, state);
      state.sealed = prior->sealed;
    }
  }
  // Intent first: the checkpoint on disk is what makes an interrupted
  // directory recognizably "mid-write" instead of silently partial.
  ckpt::save_study_checkpoint(state, dir);

  const stats::TimeSec accounting_from = config.campaign.timeline.new_driver;

  ShardedWriteStats out;
  out.shards = shard_count;
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Shards are ALWAYS regenerated, even when their container is already
    // sealed: phase D mutates each card's InfoROM, and the final
    // snapshot (last shard) needs every card's end-of-campaign state.
    auto columns = sharded.shard_events(s);

    if (s < state.sealed.size() && fs::exists(dir / state.sealed[s].file)) {
      tally(out, state.sealed[s]);
      continue;  // committed by the interrupted run; stats from the seal
    }

    tdf::TdfDataset data;
    data.period_begin = config.period.begin;
    data.period_end = config.period.end;
    data.accounting_from = accounting_from;
    data.profile_name = std::string{config.profile->name};
    data.profile_hash = config.profile->content_hash();
    data.times = std::move(columns.times);
    data.nodes = std::move(columns.nodes);
    data.kinds = std::move(columns.kinds);
    data.structures = std::move(columns.structures);

    if (s + 1 == shard_count) {
      // Side artifacts ride in the last shard: the job trace is resident
      // for the whole campaign anyway, and the smi sweep needs every
      // card's end-of-campaign state (available only after the final
      // shard ran).  Both round-trip the text serialization, exactly
      // like write_dataset, so every format of one study quantizes
      // identically.
      data.has_jobs = true;
      for (const auto& line : logsim::emit_job_log(sharded.trace())) {
        if (const auto rec = logsim::parse_job_log_line(line)) data.jobs.push_back(*rec);
      }
      data.has_smi = true;
      const auto sweep =
          logsim::parse_smi_sweep_text(logsim::smi_sweep_text(sharded.final_snapshot()));
      data.snapshot.taken_at = sweep.taken_at;
      data.snapshot.records = sweep.records;
    }

    auto seal = write_shard(dir, s, data);
    tally(out, seal);
    if (s < state.sealed.size()) {
      state.sealed[s] = std::move(seal);
    } else {
      state.sealed.push_back(std::move(seal));
    }
    ckpt::save_study_checkpoint(state, dir);
    TITAN_PTP("study/shard/checkpoint");
  }

  // Manifest last (atomically): a crashed writer leaves a directory
  // without integrity claims rather than one with stale claims.
  auto manifest = manifest_header(config.period.begin, config.period.end, accounting_from,
                                  *config.profile, shard_count);
  for (const auto& seal : state.sealed) {
    manifest.push_back("checksum " + seal.file + ' ' +
                       ingest::checksum_hex(seal.checksum));
  }
  TITAN_PTP("study/shard/pre-manifest");
  atomic_write_lines(dir / "manifest.txt", manifest);
  TITAN_PTP("study/shard/committed");
  ckpt::remove_study_checkpoint(dir);
  return out;
}

ShardedWriteStats write_sharded_dataset(const StudyContext& context,
                                        const std::filesystem::path& dir,
                                        std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument{"write_sharded_dataset: shard_count must be positive"};
  }
  fs::create_directories(dir);

  // Intent marker (not a resume plan: re-sharding reruns from the loaded
  // context).  Without it, a kill between shard commits leaves a
  // contiguous-but-short shard roster that loads as a silently smaller
  // dataset; with it, loaders reject the directory as E_CKPT_INCOMPLETE.
  ckpt::StudyCheckpoint intent;
  intent.seed = 0;
  intent.profile_name = std::string{context.profile->name};
  intent.profile_hash = context.profile->content_hash();
  intent.shard_count = 0;
  intent.card_fences = {0};
  ckpt::save_study_checkpoint(intent, dir);

  const bool have_jobs = context.truth.has_value() || !context.job_log.empty();
  const bool have_smi = context.truth.has_value() || context.has(kSnapshot);
  auto manifest = manifest_header(context.period.begin, context.period.end,
                                  context.accounting_from, *context.profile, shard_count);

  ShardedWriteStats out;
  out.shards = shard_count;
  const std::size_t total = context.events.size();
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Even contiguous split: the stream is time-sorted, so the loader's
    // (time, shard) merge reduces to concatenation and any bounds work.
    const std::size_t lo = total * s / shard_count;
    const std::size_t hi = total * (s + 1) / shard_count;

    tdf::TdfDataset data;
    data.period_begin = context.period.begin;
    data.period_end = context.period.end;
    data.accounting_from = context.accounting_from;
    data.profile_name = std::string{context.profile->name};
    data.profile_hash = context.profile->content_hash();
    data.times.reserve(hi - lo);
    data.nodes.reserve(hi - lo);
    data.kinds.reserve(hi - lo);
    data.structures.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& e = context.events[i];
      data.times.push_back(e.time);
      data.nodes.push_back(e.node);
      data.kinds.push_back(e.kind);
      data.structures.push_back(e.structure);
    }

    if (s + 1 == shard_count) {
      if (have_jobs) {
        data.has_jobs = true;
        data.jobs = detail::quantized_jobs(context);
      }
      if (have_smi) {
        data.has_smi = true;
        data.snapshot = detail::quantized_smi(context.snapshot);
      }
    }
    const auto seal = write_shard(dir, s, data);
    tally(out, seal);
    manifest.push_back("checksum " + seal.file + ' ' +
                       ingest::checksum_hex(seal.checksum));
  }

  TITAN_PTP("study/reshard/pre-manifest");
  atomic_write_lines(dir / "manifest.txt", manifest);
  TITAN_PTP("study/reshard/committed");
  ckpt::remove_study_checkpoint(dir);
  return out;
}

}  // namespace titan::study
