// Read-only crash-consistency check for a dataset directory -- the
// `titan-convert --fsck` engine.
//
// fsck_dataset answers one question without mutating anything: is this
// directory a cleanly committed dataset, or does it carry crash state a
// loader would reject?  It walks the same evidence the loaders do --
// orphan *.tmp files, a study.ckpt with no committed manifest, manifest
// checksum claims (hashing the TDF containers too, which the load fast
// path deliberately skips), the shard roster against the `shards N`
// claim -- and reports every finding with its triage code.  The report
// text is byte-stable for a given directory state (no absolute paths,
// deterministic ordering), so it can be golden-tested and diffed across
// runs.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "ingest/triage.hpp"

namespace titan::study {

/// One fsck finding: the artifact, its triage code, and context.
struct FsckFinding {
  std::string file;
  ingest::TriageCode code = ingest::TriageCode::kFileMissing;
  std::string detail;

  friend bool operator==(const FsckFinding& a, const FsckFinding& b) = default;
};

/// The full read-only check result.
struct FsckResult {
  std::string layout;  ///< "binary", "sharded", "text" or "none"
  std::vector<FsckFinding> findings;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }

  /// Byte-stable plain-text report (suitable for golden tests).
  [[nodiscard]] std::string report_text() const;
};

/// Check `dir` for crash state and integrity damage.  Read-only: never
/// quarantines, repairs or deletes.  Never throws on dataset damage --
/// damage IS the output (filesystem errors still surface as exceptions).
[[nodiscard]] FsckResult fsck_dataset(const std::filesystem::path& dir);

}  // namespace titan::study
