// Shared serialization internals for the dataset writers (write_dataset
// and the sharded producers).  Both formats round-trip doubles through
// the text serialization so text, binary and sharded datasets of one
// context load byte-identically; these helpers are that quantization
// rule in one place.  Not a public API.
#pragma once

#include <string>
#include <vector>

#include "logsim/joblog.hpp"
#include "logsim/smi.hpp"
#include "study/context.hpp"

namespace titan::study::detail {

/// Console lines of the context: the simulator's exact log when ground
/// truth is present, else the console-recoverable view re-serialized (the
/// same event stream either way).
[[nodiscard]] std::vector<std::string> console_lines_of(const StudyContext& context);

/// Job lines of the context (ground-truth trace, else the loaded job log).
[[nodiscard]] std::vector<std::string> job_lines_of(const StudyContext& context);

/// Job records quantized through the text serialization (what the binary
/// formats store).
[[nodiscard]] std::vector<logsim::JobLogRecord> quantized_jobs(const StudyContext& context);

/// Smi snapshot quantized through the text serialization.
[[nodiscard]] logsim::SmiSnapshot quantized_smi(const logsim::SmiSnapshot& snapshot);

}  // namespace titan::study::detail
