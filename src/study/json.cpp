#include "study/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace titan::study {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

template <typename T>
void append_number(std::string& out, T value) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

}  // namespace

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (!is_object()) throw std::logic_error{"JsonValue::set on a non-object"};
  std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (!is_array()) throw std::logic_error{"JsonValue::push on a non-array"};
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto* found = find(key);
  if (found == nullptr) throw std::out_of_range{"JsonValue: no member " + std::string{key}};
  return *found;
}

double JsonValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return static_cast<double>(*i);
  return static_cast<double>(std::get<std::uint64_t>(value_));
}

void JsonValue::write(std::string& out) const {
  switch (value_.index()) {
    case 0: out += "null"; break;
    case 1: out += std::get<bool>(value_) ? "true" : "false"; break;
    case 2: append_number(out, std::get<std::int64_t>(value_)); break;
    case 3: append_number(out, std::get<std::uint64_t>(value_)); break;
    case 4: {
      const double d = std::get<double>(value_);
      if (std::isfinite(d)) {
        append_number(out, d);
      } else {
        out += "null";
      }
      break;
    }
    case 5: append_escaped(out, std::get<std::string>(value_)); break;
    case 6: {
      out.push_back('[');
      const auto& array = std::get<Array>(value_);
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out.push_back(',');
        array[i].write(out);
      }
      out.push_back(']');
      break;
    }
    default: {
      out.push_back('{');
      const auto& object = std::get<Object>(value_);
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_escaped(out, object[i].first);
        out.push_back(':');
        object[i].second.write(out);
      }
      out.push_back('}');
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out);
  return out;
}

}  // namespace titan::study
