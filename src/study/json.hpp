// A minimal, deterministic JSON document builder for StudyReport
// serialization.  Objects preserve insertion order (no hashing, no
// locale), numbers serialize via std::to_chars (shortest round-trip for
// doubles), so the same report dumps to the same bytes on every run and
// at every titan::par width.  This is a writer with just enough read
// support for tests; it is not a general-purpose JSON parser.
#pragma once

#include <cstdint>
#include <concepts>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace titan::study {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered members: serialization order == build order.
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() noexcept : value_{nullptr} {}
  JsonValue(std::nullptr_t) noexcept : value_{nullptr} {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) noexcept : value_{b} {}                // NOLINT(google-explicit-constructor)
  JsonValue(const char* s) : value_{std::string{s}} {}     // NOLINT(google-explicit-constructor)
  JsonValue(std::string_view s) : value_{std::string{s}} {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string s) noexcept : value_{std::move(s)} {}  // NOLINT(google-explicit-constructor)

  template <std::floating_point T>
  JsonValue(T v) noexcept : value_{static_cast<double>(v)} {}  // NOLINT(google-explicit-constructor)

  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonValue(T v) noexcept {  // NOLINT(google-explicit-constructor)
    if constexpr (std::signed_integral<T>) {
      value_ = static_cast<std::int64_t>(v);
    } else {
      value_ = static_cast<std::uint64_t>(v);
    }
  }

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.value_ = Object{};
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.value_ = Array{};
    return v;
  }

  /// Append a member to an object (throws std::logic_error otherwise).
  /// Returns *this for chaining.  Keys are not deduplicated: callers own
  /// uniqueness, which keeps set() O(1).
  JsonValue& set(std::string key, JsonValue value);

  /// Append an element to an array (throws std::logic_error otherwise).
  JsonValue& push(JsonValue value);

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }

  /// First member with `key`, or nullptr (objects only; nullptr otherwise).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// find() that throws std::out_of_range on a missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  [[nodiscard]] const Object& members() const { return std::get<Object>(value_); }
  [[nodiscard]] const Array& elements() const { return std::get<Array>(value_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_double() const;  ///< any numeric alternative, widened
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  [[nodiscard]] std::uint64_t as_uint() const { return std::get<std::uint64_t>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }

  /// Serialize (compact, no whitespace) appending to `out`.  Non-finite
  /// doubles serialize as null (JSON has no inf/nan).
  void write(std::string& out) const;
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const JsonValue& a, const JsonValue& b) = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace titan::study
