#include "study/registry.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "analysis/frame_guard.hpp"
#include "analysis/frequency.hpp"
#include "analysis/interruption.hpp"
#include "analysis/prediction.hpp"
#include "analysis/reliability_report.hpp"
#include "analysis/retirement_study.hpp"
#include "analysis/sbe_study.hpp"
#include "analysis/spatial.hpp"
#include "analysis/utilization.hpp"
#include "analysis/workload_char.hpp"
#include "analysis/xid_matrix.hpp"
#include "par/parallel.hpp"
#include "render/ascii.hpp"

namespace titan::study {

namespace {

using xid::ErrorKind;

/// The per-job nvidia-smi framework window: the paper ran it "for the
/// period of over a month"; mirror the benches' final 45 days.
constexpr stats::TimeSec kSmiFrameworkWindow = 45 * stats::kSecondsPerDay;

std::string kind_token(ErrorKind kind) { return std::string{xid::token(kind)}; }

JsonValue grid_json(const stats::Grid2D& grid) {
  auto rows = JsonValue::array();
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    auto row = JsonValue::array();
    for (std::size_t c = 0; c < grid.cols(); ++c) row.push(grid.at(r, c));
    rows.push(std::move(row));
  }
  return rows;
}

template <typename T>
JsonValue sequence_json(std::span<const T> values) {
  auto array = JsonValue::array();
  for (const auto& value : values) array.push(value);
  return array;
}

JsonValue correlation_json(const stats::Correlation& c) {
  auto out = JsonValue::object();
  out.set("coefficient", c.coefficient).set("p_value", c.p_value).set("n", c.n);
  return out;
}

// ---------------------------------------------------------------------------
// Kernels.  Each is a pure reader of the const StudyContext and touches
// only the inputs its registry entry's capability mask declares, which is
// what keeps reports byte-identical across sources sharing those
// capabilities.
// ---------------------------------------------------------------------------

AnalysisResult kernel_frequency(const StudyContext& context) {
  AnalysisResult out{.name = "frequency", .text = {}, .json = JsonValue::object()};
  const auto begin = context.period.begin;
  const auto end = context.period.end;

  auto kinds_json = JsonValue::object();
  const std::vector<std::string> header = {"kind", "events", "mtbf h", "median gap h",
                                           "dispersion"};
  std::vector<std::vector<std::string>> rows;
  for (const auto kind : context.profile->active_kinds()) {
    const auto count = context.frame.count_of(kind);
    if (count == 0) continue;
    const auto mtbf = analysis::kind_mtbf(context.frame, kind, begin, end);
    const double dispersion =
        analysis::daily_dispersion_index(context.frame, kind, begin, end);
    const auto series = analysis::monthly_frequency(context.frame, kind, begin, end);

    rows.push_back({kind_token(kind), std::to_string(count),
                    render::fmt_double(mtbf.mtbf_hours, 1),
                    render::fmt_double(mtbf.median_gap_hours, 1),
                    render::fmt_double(dispersion, 2)});

    auto entry = JsonValue::object();
    entry.set("events", count)
        .set("mtbf_hours", mtbf.mtbf_hours)
        .set("median_gap_hours", mtbf.median_gap_hours)
        .set("dispersion", dispersion)
        .set("monthly", sequence_json(std::span<const std::uint64_t>{series.counts}));
    kinds_json.set(kind_token(kind), std::move(entry));
  }

  out.text = render::table(header, rows);
  const auto dbe_series =
      analysis::monthly_frequency(context.frame, ErrorKind::kDoubleBitError, begin, end);
  out.text += "\nmonthly DBE counts (Fig. 2):\n";
  const auto labels = dbe_series.labels();
  out.text += render::bar_chart(labels, dbe_series.counts);

  out.json.set("kinds", std::move(kinds_json));
  return out;
}

AnalysisResult kernel_spatial(const StudyContext& context) {
  AnalysisResult out{.name = "spatial", .text = {}, .json = JsonValue::object()};

  for (const auto kind : context.profile->spatial_kinds) {
    const auto grid = analysis::cabinet_heatmap(context.frame, kind);
    const auto cages = analysis::cage_distribution(context.frame, kind);

    out.text += kind_token(kind) + " cabinet heatmap (rows = cab_y):\n";
    out.text += render::heatmap(grid);
    const std::vector<std::string> header = {"cage", "events", "distinct cards"};
    std::vector<std::vector<std::string>> rows;
    for (std::size_t cage = 0; cage < cages.event_counts.size(); ++cage) {
      rows.push_back({std::to_string(cage), std::to_string(cages.event_counts[cage]),
                      std::to_string(cages.distinct_cards[cage])});
    }
    out.text += render::table(header, rows);
    out.text += "top/bottom cage ratio: " +
                render::fmt_double(cages.top_to_bottom_ratio(), 2) + "\n\n";

    auto entry = JsonValue::object();
    entry.set("heatmap", grid_json(grid))
        .set("cage_events", sequence_json(std::span<const std::uint64_t>{cages.event_counts}))
        .set("cage_distinct_cards",
             sequence_json(std::span<const std::uint64_t>{cages.distinct_cards}))
        .set("top_to_bottom_ratio", cages.top_to_bottom_ratio());
    out.json.set(kind_token(kind), std::move(entry));
  }

  const auto breakdown =
      analysis::structure_breakdown(context.frame, ErrorKind::kDoubleBitError);
  out.text += "DBE by memory structure (Fig. 3c):\n";
  auto structures = JsonValue::object();
  for (std::size_t i = 0; i < xid::kMemoryStructureCount; ++i) {
    const auto structure = static_cast<xid::MemoryStructure>(i);
    if (breakdown.counts[i] == 0) continue;
    out.text += "  " + std::string{xid::structure_token(structure)} + ": " +
                std::to_string(breakdown.counts[i]) + " (" +
                render::fmt_percent(breakdown.share(structure)) + ")\n";
    structures.set(std::string{xid::structure_token(structure)}, breakdown.counts[i]);
  }
  out.json.set("dbe_structures", std::move(structures));
  return out;
}

AnalysisResult kernel_xid_matrix(const StudyContext& context) {
  AnalysisResult out{.name = "xid_matrix", .text = {}, .json = JsonValue::object()};
  const auto kinds = context.profile->matrix_kinds;
  const auto with_same = analysis::follow_matrix(context.frame, kinds, 300.0, true);
  const auto cross_only = analysis::follow_matrix(context.frame, kinds, 300.0, false);
  const auto labels = with_same.labels();

  out.text += "P(B within 300 s | A), same-type included:\n";
  out.text += render::labeled_heatmap(with_same.fractions, labels, labels);
  out.text += "\nsame-type pairs excluded:\n";
  out.text += render::labeled_heatmap(cross_only.fractions, labels, labels);

  const auto isolated = analysis::isolated_kinds(with_same);
  out.text += "\nisolated kinds:";
  auto isolated_json = JsonValue::array();
  for (const auto kind : isolated) {
    out.text += ' ';
    out.text += kind_token(kind);
    isolated_json.push(kind_token(kind));
  }
  out.text += "\n";

  auto kinds_json = JsonValue::array();
  for (const auto kind : with_same.kinds) kinds_json.push(kind_token(kind));
  out.json.set("kinds", std::move(kinds_json))
      .set("fractions", grid_json(with_same.fractions))
      .set("fractions_cross_only", grid_json(cross_only.fractions))
      .set("isolated", std::move(isolated_json));
  return out;
}

AnalysisResult kernel_sbe_study(const StudyContext& context) {
  AnalysisResult out{.name = "sbe_study", .text = {}, .json = JsonValue::object()};
  const auto spatial = analysis::sbe_spatial_study(context.snapshot);
  const auto cages = analysis::sbe_cage_study(context.snapshot);

  out.text += "cards with any SBE: " + std::to_string(spatial.cards_with_any_sbe) + " (" +
              render::fmt_percent(spatial.fraction_of_fleet) + " of fleet)\n";
  out.text += "spatial skew (CV) at top-0/10/50 offenders removed: " +
              render::fmt_double(spatial.skew[0], 2) + " / " +
              render::fmt_double(spatial.skew[1], 2) + " / " +
              render::fmt_double(spatial.skew[2], 2) + "\n";
  out.text += "SBE cabinet heatmap (no exclusions, Fig. 14):\n";
  out.text += render::heatmap(spatial.grids[0]);

  const std::vector<std::string> header = {"excluded", "cage 0", "cage 1", "cage 2"};
  std::vector<std::vector<std::string>> rows;
  auto cage_counts = JsonValue::array();
  for (std::size_t level = 0; level < analysis::kOffenderExclusions.size(); ++level) {
    rows.push_back({std::to_string(analysis::kOffenderExclusions[level]),
                    std::to_string(cages.counts[level][0]),
                    std::to_string(cages.counts[level][1]),
                    std::to_string(cages.counts[level][2])});
    cage_counts.push(sequence_json(std::span<const std::uint64_t>{cages.counts[level]}));
  }
  out.text += "per-cage SBE totals by exclusion level (Fig. 15):\n";
  out.text += render::table(header, rows);

  auto offenders = JsonValue::array();
  for (std::size_t i = 0; i < spatial.top_offenders.size() && i < 10; ++i) {
    offenders.push(spatial.top_offenders[i]);
  }
  out.json.set("cards_with_any_sbe", spatial.cards_with_any_sbe)
      .set("fraction_of_fleet", spatial.fraction_of_fleet)
      .set("skew", sequence_json(std::span<const double>{spatial.skew}))
      .set("cage_counts", std::move(cage_counts))
      .set("top_offenders", std::move(offenders));
  return out;
}

AnalysisResult kernel_retirement(const StudyContext& context) {
  AnalysisResult out{.name = "retirement", .text = {}, .json = JsonValue::object()};
  const auto delays = analysis::retirement_delay_study(
      context.frame, context.accounting_from, ErrorKind::kDoubleBitError,
      context.profile->repair_recorded_kind());

  const std::vector<std::string> header = {"delay since last DBE", "retirements"};
  const std::vector<std::vector<std::string>> rows = {
      {"within 10 min", std::to_string(delays.within_10min)},
      {"10 min .. 6 h", std::to_string(delays.min10_to_6h)},
      {"beyond 6 h", std::to_string(delays.beyond_6h)},
      {"no prior DBE", std::to_string(delays.before_any_dbe)},
  };
  out.text += render::table(header, rows);
  out.text += "successive DBE pairs without a retirement between them: " +
              std::to_string(delays.dbe_pairs_without_retirement) + "\n";

  out.json.set("within_10min", delays.within_10min)
      .set("min10_to_6h", delays.min10_to_6h)
      .set("beyond_6h", delays.beyond_6h)
      .set("before_any_dbe", delays.before_any_dbe)
      .set("dbe_pairs_without_retirement", delays.dbe_pairs_without_retirement)
      .set("total_retirements", delays.total_retirements());
  return out;
}

AnalysisResult kernel_interruption(const StudyContext& context) {
  AnalysisResult out{.name = "interruption", .text = {}, .json = JsonValue::object()};
  const auto interrupts = analysis::interruption_study(
      context.truth_frame, context.trace(), context.period.begin, context.period.end);

  out.text += "jobs: " + std::to_string(interrupts.total_jobs) + ", interrupted: " +
              std::to_string(interrupts.interrupted_jobs) + " (" +
              render::fmt_percent(interrupts.interruption_rate()) + ")\n";
  out.text += "node-hours lost (no checkpointing): " +
              render::fmt_double(interrupts.node_hours_lost, 0) + " of " +
              render::fmt_double(interrupts.total_node_hours, 0) + "\n";
  out.text += "full-machine MTTI: " +
              render::fmt_double(interrupts.full_machine_mtti_hours, 2) + " h\n";

  const std::vector<std::string> header = {"min nodes", "jobs", "interrupted", "rate"};
  std::vector<std::vector<std::string>> rows;
  auto by_size = JsonValue::array();
  for (std::size_t i = 0; i < interrupts.by_size.size(); ++i) {
    const auto& cls = interrupts.by_size[i];
    rows.push_back({std::to_string(analysis::kSizeClassLowerBounds[i]),
                    std::to_string(cls.jobs), std::to_string(cls.interrupted),
                    render::fmt_percent(cls.interruption_rate())});
    auto entry = JsonValue::object();
    entry.set("min_nodes", analysis::kSizeClassLowerBounds[i])
        .set("jobs", cls.jobs)
        .set("interrupted", cls.interrupted)
        .set("node_hours_lost", cls.node_hours_lost);
    by_size.push(std::move(entry));
  }
  out.text += render::table(header, rows);

  out.json.set("total_jobs", interrupts.total_jobs)
      .set("interrupted_jobs", interrupts.interrupted_jobs)
      .set("total_node_hours", interrupts.total_node_hours)
      .set("node_hours_lost", interrupts.node_hours_lost)
      .set("full_machine_mtti_hours", interrupts.full_machine_mtti_hours)
      .set("by_size", std::move(by_size));
  return out;
}

AnalysisResult kernel_prediction(const StudyContext& context) {
  AnalysisResult out{.name = "prediction", .text = {}, .json = JsonValue::object()};
  const auto& events = context.events;
  const auto half = events.size() / 2;
  const auto train_frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{events.data(), half});
  const auto eval_frame = analysis::EventFrame::build(
      std::span<const parse::ParsedEvent>{events.data() + half, events.size() - half});

  constexpr double kHorizonS = 3600.0;
  constexpr double kThreshold = 0.1;
  const auto predictor =
      analysis::FailurePredictor::fit(train_frame, ErrorKind::kDoubleBitError, kHorizonS);
  const auto evaluation = predictor.evaluate(eval_frame, kThreshold);

  const std::vector<std::string> header = {"precursor", "P(DBE within 1 h)", "support"};
  std::vector<std::vector<std::string>> rows;
  auto rules = JsonValue::array();
  for (const auto& rule : predictor.rules()) {
    rows.push_back({kind_token(rule.precursor), render::fmt_double(rule.probability, 3),
                    std::to_string(rule.support)});
    auto entry = JsonValue::object();
    entry.set("precursor", kind_token(rule.precursor))
        .set("probability", rule.probability)
        .set("support", rule.support);
    rules.push(std::move(entry));
  }
  out.text += "learned precursor rules (train = first half of the stream):\n";
  out.text += render::table(header, rows);
  out.text += "evaluation at threshold " + render::fmt_double(kThreshold, 1) + ": " +
              std::to_string(evaluation.alarms) + " alarms, precision " +
              render::fmt_percent(evaluation.precision()) + ", recall " +
              render::fmt_percent(evaluation.recall()) + ", F1 " +
              render::fmt_double(evaluation.f1(), 3) + "\n";

  auto eval_json = JsonValue::object();
  eval_json.set("alarms", evaluation.alarms)
      .set("true_positives", evaluation.true_positives)
      .set("targets", evaluation.targets)
      .set("targets_covered", evaluation.targets_covered)
      .set("precision", evaluation.precision())
      .set("recall", evaluation.recall())
      .set("f1", evaluation.f1());
  out.json.set("horizon_s", kHorizonS)
      .set("threshold", kThreshold)
      .set("rules", std::move(rules))
      .set("evaluation", std::move(eval_json));
  return out;
}

AnalysisResult kernel_utilization(const StudyContext& context) {
  AnalysisResult out{.name = "utilization", .text = {}, .json = JsonValue::object()};
  const auto window_begin =
      std::max(context.period.begin, context.period.end - kSmiFrameworkWindow);
  const auto utilization = analysis::utilization_study(
      context.trace(), context.truth->sbe_strikes, window_begin, context.period.end);

  const std::vector<std::string> header = {"metric", "spearman (all)", "p", "spearman (excl)",
                                           "jobs"};
  std::vector<std::vector<std::string>> rows;
  auto metrics = JsonValue::object();
  for (const auto& metric : utilization.metrics) {
    rows.push_back({std::string{analysis::metric_name(metric.metric)},
                    render::fmt_double(metric.spearman_all.coefficient, 3),
                    render::fmt_double(metric.spearman_all.p_value, 3),
                    render::fmt_double(metric.spearman_excl.coefficient, 3),
                    std::to_string(metric.jobs_all)});
    auto entry = JsonValue::object();
    entry.set("spearman_all", correlation_json(metric.spearman_all))
        .set("pearson_all", correlation_json(metric.pearson_all))
        .set("spearman_excl", correlation_json(metric.spearman_excl))
        .set("pearson_excl", correlation_json(metric.pearson_excl))
        .set("jobs_all", metric.jobs_all)
        .set("jobs_excl", metric.jobs_excl);
    metrics.set(std::string{analysis::metric_name(metric.metric)}, std::move(entry));
  }
  out.text += "utilization vs SBE correlations (final 45-day smi window):\n";
  out.text += render::table(header, rows);
  out.text += "per-user core-hours vs SBE spearman: " +
              render::fmt_double(utilization.user_spearman_all.coefficient, 3) + " (" +
              std::to_string(utilization.users_all) + " users)\n";

  out.json.set("window_begin", window_begin)
      .set("window_jobs", utilization.job_sbe.size())
      .set("metrics", std::move(metrics))
      .set("user_spearman_all", correlation_json(utilization.user_spearman_all))
      .set("user_spearman_excl", correlation_json(utilization.user_spearman_excl))
      .set("users_all", utilization.users_all)
      .set("users_excl", utilization.users_excl);
  return out;
}

AnalysisResult kernel_reliability_report(const StudyContext& context) {
  AnalysisResult out{.name = "reliability_report", .text = {}, .json = JsonValue::object()};
  const auto report =
      analysis::mtbf_report(context.frame, context.period.begin, context.period.end);
  const auto comparison = analysis::smi_console_comparison(context.frame, context.snapshot);

  out.text += "DBE MTBF: " + render::fmt_double(report.measured.mtbf_hours, 1) + " h over " +
              std::to_string(report.measured.event_count) + " events (datasheet budget: " +
              render::fmt_double(report.datasheet_mtbf_hours, 1) + " h, field is " +
              render::fmt_double(report.improvement_factor, 1) + "x better -- Obs. 1)\n";
  out.text += "console DBEs: " + std::to_string(comparison.console_dbe_count) +
              ", nvidia-smi DBEs: " + std::to_string(comparison.smi_dbe_count) +
              " (undercount " + render::fmt_percent(comparison.smi_undercount_fraction()) +
              " -- Obs. 2)\n";
  out.text += "cards with DBE>SBE in smi counters: " +
              std::to_string(comparison.cards_dbe_exceeds_sbe) + " of " +
              std::to_string(comparison.cards_with_dbe) + " cards with any DBE\n";

  auto measured = JsonValue::object();
  measured.set("mtbf_hours", report.measured.mtbf_hours)
      .set("mean_gap_hours", report.measured.mean_gap_hours)
      .set("median_gap_hours", report.measured.median_gap_hours)
      .set("event_count", report.measured.event_count)
      .set("window_hours", report.measured.window_hours);
  out.json.set("measured", std::move(measured))
      .set("datasheet_mtbf_hours", report.datasheet_mtbf_hours)
      .set("improvement_factor", report.improvement_factor)
      .set("console_dbe_count", comparison.console_dbe_count)
      .set("smi_dbe_count", comparison.smi_dbe_count)
      .set("smi_undercount_fraction", comparison.smi_undercount_fraction())
      .set("cards_dbe_exceeds_sbe", comparison.cards_dbe_exceeds_sbe)
      .set("cards_with_dbe", comparison.cards_with_dbe);
  return out;
}

AnalysisResult kernel_workload_char(const StudyContext& context) {
  AnalysisResult out{.name = "workload_char", .text = {}, .json = JsonValue::object()};
  const auto& trace = context.trace();
  const auto shape = analysis::workload_shape(trace);

  out.text += "core-hours vs node-count spearman: " +
              render::fmt_double(shape.corehours_vs_nodes.coefficient, 3) + " (n=" +
              std::to_string(shape.corehours_vs_nodes.n) + ")\n";
  out.text += "top-1% max-memory jobs mean node-count percentile: " +
              render::fmt_double(shape.top_memory_jobs_node_percentile, 1) + "\n";
  out.text += "top-1% total-memory jobs mean core-hour percentile: " +
              render::fmt_double(shape.top_memory_jobs_corehour_percentile, 1) + "\n";
  out.text += "small-vs-large max wall-hours ratio: " +
              render::fmt_double(shape.small_vs_large_max_wall_ratio, 2) + "\n";

  constexpr std::size_t kBins = 20;
  struct Panel {
    const char* name;
    analysis::JobField sort_key;
    analysis::JobField target;
  };
  constexpr Panel kPanels[] = {
      {"corehours_vs_totalmem", analysis::JobField::kGpuCoreHours,
       analysis::JobField::kTotalMemory},
      {"corehours_vs_nodes", analysis::JobField::kGpuCoreHours, analysis::JobField::kNodeCount},
      {"nodes_vs_wallhours", analysis::JobField::kNodeCount, analysis::JobField::kWallHours},
      {"nodes_vs_maxmem", analysis::JobField::kNodeCount, analysis::JobField::kMaxMemory},
  };
  auto profiles = JsonValue::object();
  for (const auto& panel : kPanels) {
    const auto profile = analysis::job_profile(trace, panel.sort_key, panel.target, kBins);
    auto entry = JsonValue::object();
    entry.set("key_mean", sequence_json(std::span<const double>{profile.key_mean}))
        .set("target_mean", sequence_json(std::span<const double>{profile.target_mean}));
    profiles.set(panel.name, std::move(entry));
  }

  out.json.set("corehours_vs_nodes", correlation_json(shape.corehours_vs_nodes))
      .set("top_memory_jobs_node_percentile", shape.top_memory_jobs_node_percentile)
      .set("top_memory_jobs_corehour_percentile", shape.top_memory_jobs_corehour_percentile)
      .set("small_vs_large_max_wall_ratio", shape.small_vs_large_max_wall_ratio)
      .set("profiles", std::move(profiles));
  return out;
}

/// Translate a registry capability mask into the EventFrame column groups
/// it licenses.  kEvents buys the base columns of the console frame;
/// kGroundTruth additionally buys the truth frame (base + job/root
/// attribution); kLedger buys the card join.  The guard is per-thread,
/// not per-frame, so both frames share one mask.
unsigned guard_columns(unsigned needs) {
  unsigned columns = 0;
  if ((needs & kEvents) != 0) columns |= analysis::kColumnBase;
  if ((needs & kLedger) != 0) columns |= analysis::kColumnCards;
  if ((needs & kGroundTruth) != 0) {
    columns |= analysis::kColumnBase | analysis::kColumnJobs;
  }
  return columns;
}

}  // namespace

const AnalysisRegistry& AnalysisRegistry::standard() {
  static const AnalysisRegistry registry = [] {
    AnalysisRegistry r;
    r.add({"frequency", "per-kind census, MTBF and monthly series (Figs. 2/4/6/9-11)",
           kEvents, kernel_frequency});
    r.add({"spatial", "cabinet heatmaps, cage and structure breakdowns (Figs. 3/5/7)",
           kEvents | kLedger, kernel_spatial});
    r.add({"xid_matrix", "following-failure matrix between XID kinds (Fig. 13)", kEvents,
           kernel_xid_matrix});
    r.add({"sbe_study", "SBE spatial/offender analyses from the smi sweep (Figs. 14-15)",
           kSnapshot, kernel_sbe_study});
    r.add({"retirement", "DBE-to-retirement delay buckets (Fig. 8, Obs. 5)", kEvents,
           kernel_retirement});
    r.add({"interruption", "application interruption impact by job size", kGroundTruth | kTrace,
           kernel_interruption});
    r.add({"prediction", "precursor-rule DBE prediction (train/eval split)", kEvents,
           kernel_prediction});
    r.add({"utilization", "utilization vs SBE correlations (Figs. 16-20)", kTrace | kStrikes,
           kernel_utilization});
    r.add({"reliability_report", "DBE MTBF vs datasheet and smi cross-check (Obs. 1-2)",
           kEvents | kSnapshot, kernel_reliability_report});
    r.add({"workload_char", "GPU workload characterization (Fig. 21, Obs. 14)", kTrace,
           kernel_workload_char});
    return r;
  }();
  return registry;
}

void AnalysisRegistry::add(Entry entry) {
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument{"AnalysisRegistry: duplicate analysis " + entry.name};
  }
  entries_.push_back(std::move(entry));
}

const AnalysisRegistry::Entry* AnalysisRegistry::find(std::string_view name) const noexcept {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> AnalysisRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  return out;
}

std::vector<std::string> AnalysisRegistry::available(const StudyContext& context) const {
  std::vector<std::string> out;
  for (const auto& entry : entries_) {
    if (context.has(entry.needs)) out.push_back(entry.name);
  }
  return out;
}

StudyReport AnalysisRegistry::run(const StudyContext& context,
                                  std::span<const std::string> selection) const {
  std::vector<const Entry*> selected;
  selected.reserve(selection.size());
  for (const auto& name : selection) {
    const auto* entry = find(name);
    if (entry == nullptr) {
      throw std::invalid_argument{"AnalysisRegistry: unknown analysis " + name};
    }
    if (!context.has(entry->needs)) {
      throw std::invalid_argument{"AnalysisRegistry: context cannot run " + name +
                                  " (missing capability)"};
    }
    selected.push_back(entry);
  }

  StudyReport report;
  report.period = context.period;
  if (context.ingest_report) report.ingest = ingest_section(*context.ingest_report);
  const bool guard = analysis::frame_guard::enabled();
  report.results = par::parallel_map(0, selected.size(), 1, [&](std::size_t i) {
    if (guard) {
      const analysis::FrameGuardScope scope{guard_columns(selected[i]->needs)};
      return selected[i]->kernel(context);
    }
    return selected[i]->kernel(context);
  });
  return report;
}

StudyReport AnalysisRegistry::run_all(const StudyContext& context) const {
  const auto selection = available(context);
  return run(context, selection);
}

}  // namespace titan::study
