// ComparativeReport: one analysis sweep per fleet profile, rendered side
// by side.
//
// compare_fleets runs the same simulated campaign (same seed, same
// period) under each profile, sweeps the full AnalysisRegistry over each
// context, and keeps the per-profile StudyReports plus a compact
// headline-metric table with one column per fleet.  Everything renders
// deterministically (render::table, std::to_chars numbers, profiles in
// caller order), so the comparison bytes are stable across runs and
// titan::par widths.  Metrics an analysis cannot provide for a fleet
// (e.g. NVLink counts on a fleet without NVLink) render as "-".
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/facility.hpp"
#include "profile/fleet_profile.hpp"
#include "study/report.hpp"

namespace titan::study {

struct ComparativeReport {
  struct Column {
    const profile::FleetProfile* profile = nullptr;  ///< never null
    StudyReport report;                              ///< full registry sweep
  };

  stats::StudyPeriod period{};
  std::uint64_t seed = 0;
  std::vector<Column> columns;  ///< caller's profile order

  /// Headline-metric table: one row per metric, one column per profile.
  [[nodiscard]] std::string text() const;

  /// Compact JSON: {"period": ..., "seed": ..., "profiles": [{"name",
  /// "chip", "metrics": {...}}, ...]} -- metrics mirror the text table.
  [[nodiscard]] std::string json() const;
};

/// Run the base config's campaign under each profile (apply_profile per
/// column: the profile's fault calibration replaces the base campaign
/// model) and sweep every analysis the simulated context can feed.
/// Throws std::invalid_argument on an empty profile list.
[[nodiscard]] ComparativeReport compare_fleets(
    std::span<const profile::FleetProfile* const> profiles,
    const core::FacilityConfig& base);

}  // namespace titan::study
