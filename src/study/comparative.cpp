#include "study/comparative.hpp"

#include <stdexcept>
#include <utility>

#include "render/ascii.hpp"
#include "study/registry.hpp"
#include "study/source.hpp"

namespace titan::study {

namespace {

using xid::ErrorKind;

/// JSON value of one analysis in a column's report, or nullptr.
const JsonValue* analysis_json(const StudyReport& report, std::string_view name) {
  const auto* result = report.find(name);
  return result == nullptr ? nullptr : &result->json;
}

/// "frequency" census entry for a kind, or nullptr when the kind never
/// fired in that fleet (the kernel skips zero-count kinds).
const JsonValue* kind_entry(const StudyReport& report, ErrorKind kind) {
  const auto* freq = analysis_json(report, "frequency");
  if (freq == nullptr) return nullptr;
  const auto* kinds = freq->find("kinds");
  return kinds == nullptr ? nullptr : kinds->find(xid::token(kind));
}

constexpr std::string_view kMissing = "-";

std::string count_cell(const StudyReport& report, ErrorKind kind) {
  const auto* entry = kind_entry(report, kind);
  if (entry == nullptr) return std::string{kMissing};
  return std::to_string(entry->at("events").as_uint());
}

std::string mtbf_cell(const StudyReport& report, ErrorKind kind) {
  const auto* entry = kind_entry(report, kind);
  if (entry == nullptr) return std::string{kMissing};
  return render::fmt_double(entry->at("mtbf_hours").as_double(), 1);
}

std::uint64_t total_events(const StudyReport& report) {
  std::uint64_t total = 0;
  if (const auto* freq = analysis_json(report, "frequency")) {
    if (const auto* kinds = freq->find("kinds")) {
      for (const auto& [token, entry] : kinds->members()) {
        total += entry.at("events").as_uint();
      }
    }
  }
  return total;
}

/// One metric row: label plus a cell-extractor applied per column.
struct MetricRow {
  std::string label;
  std::string (*cell)(const ComparativeReport::Column&);
};

std::string repair_count_cell(const ComparativeReport::Column& column) {
  return count_cell(column.report, column.profile->repair_recorded_kind());
}

std::string retirement_cell(const ComparativeReport::Column& column, std::string_view key) {
  const auto* retirement = analysis_json(column.report, "retirement");
  if (retirement == nullptr) return std::string{kMissing};
  return std::to_string(retirement->at(key).as_uint());
}

std::string interruption_rate_cell(const ComparativeReport::Column& column) {
  const auto* interruption = analysis_json(column.report, "interruption");
  if (interruption == nullptr) return std::string{kMissing};
  const double jobs = interruption->at("total_jobs").as_double();
  const double interrupted = interruption->at("interrupted_jobs").as_double();
  return render::fmt_percent(jobs == 0.0 ? 0.0 : interrupted / jobs);
}

std::string mtti_cell(const ComparativeReport::Column& column) {
  const auto* interruption = analysis_json(column.report, "interruption");
  if (interruption == nullptr) return std::string{kMissing};
  return render::fmt_double(interruption->at("full_machine_mtti_hours").as_double(), 2);
}

const MetricRow kRows[] = {
    {"chip", [](const ComparativeReport::Column& c) {
       return std::string{c.profile->gpu.chip};
     }},
    {"active error kinds", [](const ComparativeReport::Column& c) {
       return std::to_string(c.profile->active_kinds().size());
     }},
    {"repair policy", [](const ComparativeReport::Column& c) {
       return std::string{c.profile->fault.repair_policy ==
                                  fault::MemoryRepairPolicy::kPageRetirement
                              ? "page retirement"
                              : "row remapping"};
     }},
    {"console events", [](const ComparativeReport::Column& c) {
       return std::to_string(total_events(c.report));
     }},
    {"DBE events", [](const ComparativeReport::Column& c) {
       return count_cell(c.report, ErrorKind::kDoubleBitError);
     }},
    {"DBE MTBF h", [](const ComparativeReport::Column& c) {
       return mtbf_cell(c.report, ErrorKind::kDoubleBitError);
     }},
    {"OTB events", [](const ComparativeReport::Column& c) {
       return count_cell(c.report, ErrorKind::kOffTheBus);
     }},
    {"NVLink events", [](const ComparativeReport::Column& c) {
       return count_cell(c.report, ErrorKind::kNvLinkError);
     }},
    {"SDC events", [](const ComparativeReport::Column& c) {
       return count_cell(c.report, ErrorKind::kSilentDataCorruption);
     }},
    {"memory repairs", repair_count_cell},
    {"repairs within 10 min of DBE", [](const ComparativeReport::Column& c) {
       return retirement_cell(c, "within_10min");
     }},
    {"job interruption rate", interruption_rate_cell},
    {"full-machine MTTI h", mtti_cell},
};

}  // namespace

std::string ComparativeReport::text() const {
  std::vector<std::string> header = {"metric"};
  for (const auto& column : columns) header.push_back(std::string{column.profile->name});

  std::vector<std::vector<std::string>> rows;
  rows.reserve(std::size(kRows));
  for (const auto& metric : kRows) {
    std::vector<std::string> row = {metric.label};
    for (const auto& column : columns) row.push_back(metric.cell(column));
    rows.push_back(std::move(row));
  }

  std::string out = "fleet comparison (" + std::to_string(columns.size()) +
                    " profiles, seed " + std::to_string(seed) + ")\n";
  out += render::table(header, rows);
  return out;
}

std::string ComparativeReport::json() const {
  auto period_json = JsonValue::object();
  period_json.set("begin", period.begin).set("end", period.end);

  auto profiles = JsonValue::array();
  for (const auto& column : columns) {
    auto metrics = JsonValue::object();
    for (const auto& metric : kRows) metrics.set(metric.label, metric.cell(column));
    auto entry = JsonValue::object();
    entry.set("name", column.profile->name)
        .set("display_name", column.profile->display_name)
        .set("content_hash", column.profile->content_hash())
        .set("metrics", std::move(metrics));
    profiles.push(std::move(entry));
  }

  auto root = JsonValue::object();
  root.set("period", std::move(period_json))
      .set("seed", seed)
      .set("profiles", std::move(profiles));
  return root.dump();
}

ComparativeReport compare_fleets(std::span<const profile::FleetProfile* const> profiles,
                                 const core::FacilityConfig& base) {
  if (profiles.empty()) {
    throw std::invalid_argument{"compare_fleets: need at least one profile"};
  }

  ComparativeReport out;
  out.period = base.period;
  out.seed = base.seed;
  for (const auto* fleet : profiles) {
    auto config = base;
    core::apply_profile(config, *fleet);
    const auto context = SimulatedSource{config}.load();
    out.columns.push_back({fleet, AnalysisRegistry::standard().run_all(context)});
  }
  return out;
}

}  // namespace titan::study
