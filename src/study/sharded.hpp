// Sharded dataset production: the out-of-core companions to
// write_dataset.
//
// A sharded dataset directory holds S complete TDF containers
// (dataset.shard-0.tdf ... dataset.shard-(S-1).tdf) plus a manifest with
// a `shards S` key.  Each shard carries one contiguous, time-ordered
// slice of the event stream; the job-accounting and nvidia-smi segments
// ride in the LAST shard (they depend on end-of-campaign card state).
// DatasetSource::load detects the layout and k-way merges the shard
// streams back into one StudyContext that is byte-identical to loading
// the equivalent monolithic dataset.
//
// Two producers:
//   * generate_sharded_dataset runs the campaign shard by shard through
//     core::ShardedStudy and spills each shard as it completes -- peak
//     resident memory is the campaign plan plus ONE shard's events, never
//     the full stream.  This is the only way to produce datasets that
//     exceed what run_study can materialize.
//   * write_sharded_dataset splits an already-loaded context into S
//     contiguous chunks (the titan-convert re-sharding path).
#pragma once

#include <cstddef>
#include <filesystem>

#include "core/facility.hpp"
#include "study/context.hpp"

namespace titan::study {

/// What a sharded write produced (CLI summary facts).
struct ShardedWriteStats {
  std::size_t shards = 0;
  std::size_t events = 0;             ///< total across shards
  std::size_t jobs = 0;
  std::size_t smi_blocks = 0;
  std::size_t peak_shard_events = 0;  ///< largest single shard
  std::size_t bytes = 0;              ///< total container bytes on disk
};

/// Run the fault campaign for `config` shard by shard and write a sharded
/// binary dataset into `dir`.  Events stream to disk as each shard
/// completes; the full event set is never resident.  Deterministic: the
/// loaded result is byte-identical to a monolithic dataset of the same
/// config at every shard count.  Throws std::invalid_argument when
/// `shard_count` is zero.
///
/// Crash consistency: a `study.ckpt` checkpoint is saved before the
/// first shard and re-saved after each shard commits, and the manifest
/// is written last as the commit point.  With `resume` set, a directory
/// holding a checkpoint from an interrupted run is picked up where it
/// left off: orphan *.tmp files are swept, already-sealed shards are
/// kept (their stats come from the seal record), and the remaining
/// shards are regenerated -- the finished dataset is byte-identical to
/// an uninterrupted run.  A damaged checkpoint throws IngestError with
/// an E_CKPT_* code; a checkpoint that disagrees with `config`'s seed,
/// profile or shard plan throws E_CKPT_MISMATCH.
ShardedWriteStats generate_sharded_dataset(const core::FacilityConfig& config,
                                           std::size_t shard_count,
                                           const std::filesystem::path& dir,
                                           bool resume = false);

/// Split an in-memory context's event stream into `shard_count`
/// contiguous chunks and write them as a sharded binary dataset.  Since
/// the stream is time-sorted, any contiguous split merges back losslessly
/// (the loader's (time, shard) tie-break reduces to concatenation).
ShardedWriteStats write_sharded_dataset(const StudyContext& context,
                                        const std::filesystem::path& dir,
                                        std::size_t shard_count);

}  // namespace titan::study
