// StudySource: where a study's data comes from.
//
// Two implementations cover the paper's two positions: SimulatedSource
// runs the facility simulator (the "operate Titan for 21 months" stance,
// full ground truth), and DatasetSource ingests the on-disk text
// artifacts a real analyst would start from (console.log, jobs.log,
// smi_sweep.txt, manifest.txt) with no simulator access.  Both produce
// one StudyContext with the EventFrame built exactly once.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>

#include "core/facility.hpp"
#include "ingest/triage.hpp"
#include "study/context.hpp"

namespace titan::study {

class StudySource {
 public:
  virtual ~StudySource() = default;

  /// Build the context.  Throws std::runtime_error when the source's
  /// inputs are missing or unusable.
  [[nodiscard]] virtual StudyContext load() const = 0;

  /// Short human label ("simulated", "dataset") for CLI preambles only;
  /// never serialized into a StudyReport (reports must not depend on the
  /// source).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Runs core::run_study and downgrades the ground truth to the
/// console-recoverable view (plus the truth frame for ground-truth-only
/// kernels).  Capabilities: events, ledger, snapshot, trace, ground
/// truth, strikes.
class SimulatedSource final : public StudySource {
 public:
  explicit SimulatedSource(core::FacilityConfig config) : config_{config} {}

  [[nodiscard]] StudyContext load() const override;
  [[nodiscard]] std::string name() const override { return "simulated"; }

 private:
  core::FacilityConfig config_;
};

/// Ingests a dataset directory written by write_dataset or the sharded
/// producers (or any producer of the same formats).  A `dataset.tdf`
/// binary container, when present, is preferred (mmap + columnar decode,
/// no text parsing); next a sharded layout (`dataset.shard-0.tdf` ...,
/// streamed window-by-window and k-way merged back into the global event
/// order -- byte-identical to the monolithic load at any shard count);
/// otherwise the text artifacts are loaded: console.log is required;
/// jobs.log, smi_sweep.txt and manifest.txt are optional (capabilities
/// shrink accordingly; without a manifest the period is inferred from the
/// event stream).  Capabilities: events, plus snapshot when the sweep
/// exists.
///
/// Under IngestPolicy::kStrict (the default) structural corruption --
/// checksum mismatches, manifest damage, NUL/overlong lines, timestamp
/// regressions, a manifest-claimed file gone missing -- throws
/// ingest::IngestError naming file, line and taxonomy code.  Under
/// kSalvage the load repairs what it can, quarantines the rest, and
/// attaches the full ingest::IngestReport to the context.
///
/// Fleet-profile validation: datasets record the profile they were
/// generated under (TDF meta segment, manifest `profile` line).  Passing
/// `expected_profile` asserts the load runs under that profile: a
/// disagreement with the recording -- different profile, unknown name, or
/// a content-hash divergence -- is E_PROFILE_MISMATCH (fatal under
/// kStrict; under kSalvage the load warns and adopts the dataset's
/// recorded profile).  With the default nullptr the recorded profile is
/// adopted silently; pre-profile datasets load as k20x-titan.
class DatasetSource final : public StudySource {
 public:
  explicit DatasetSource(std::filesystem::path dir,
                         ingest::IngestPolicy policy = ingest::IngestPolicy::kStrict,
                         const profile::FleetProfile* expected_profile = nullptr)
      : dir_{std::move(dir)}, policy_{policy}, expected_profile_{expected_profile} {}

  [[nodiscard]] StudyContext load() const override;
  [[nodiscard]] std::string name() const override { return "dataset"; }
  [[nodiscard]] ingest::IngestPolicy policy() const noexcept { return policy_; }

 private:
  std::filesystem::path dir_;
  ingest::IngestPolicy policy_;
  const profile::FleetProfile* expected_profile_;
};

/// On-disk dataset representation write_dataset produces.
enum class DatasetFormat : std::uint8_t {
  kText,    ///< console.log / jobs.log / smi_sweep.txt / manifest.txt
  kBinary,  ///< dataset.tdf (titan::tdf container) + manifest.txt
};

/// Write the on-disk dataset artifacts for a context.
///
/// kText writes console.log, jobs.log, smi_sweep.txt and manifest.txt;
/// kBinary writes a dataset.tdf container holding the same columns plus a
/// manifest.txt.  Either way the manifest carries the period, the
/// retirement accounting cutoff and FNV-1a content checksums (verified by
/// DatasetSource::load), so a round-trip reproduces the source report
/// bytes.  Contexts with ground truth serialize the exact simulator
/// console log; contexts without (e.g. a loaded dataset being converted)
/// serialize the console-recoverable view, which is the same event
/// stream.  Doubles (job utilization, smi temperatures) are quantized to
/// the text serialization's precision in both formats, so text and binary
/// datasets of one context load byte-identically.
///
/// Every file is written atomically (tmp + fsync + rename) with the
/// manifest last, so a crash mid-write can never leave a directory that
/// passes checksum verification with partial content.
void write_dataset(const StudyContext& context, const std::filesystem::path& dir,
                   DatasetFormat format = DatasetFormat::kText);

}  // namespace titan::study
