// The unified GPU error event record.
//
// `Event` is the ground-truth record produced by the fault generators and
// carried through the whole pipeline.  The console-log emitter serializes a
// *subset* of these fields (a real console line has no card serial and no
// parent linkage); the parser recovers what it can, and tests compare the
// recovered stream against ground truth to validate the paper's filtering
// methodology.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "stats/calendar.hpp"
#include "topology/machine.hpp"
#include "xid/taxonomy.hpp"

namespace titan::xid {

/// GPU memory structure affected by an ECC event (paper Fig. 3(c)).
/// kNone for error kinds that are not memory-structure specific.
enum class MemoryStructure : std::uint8_t {
  kNone,
  kDeviceMemory,   ///< 6 GB GDDR5 framebuffer
  kRegisterFile,   ///< 64K registers per SM
  kL2Cache,        ///< 1536 KB shared
  kL1Shared,       ///< 64 KB combined shared memory / L1 per SM
  kReadOnlyCache,  ///< 48 KB per SM (parity, not SECDED)
  kTextureMemory,  ///< texture path (paper Fig. 3(c) category)
};

/// Derived from the enum's last value (see kErrorKindCount): appending a
/// structure can never silently truncate token/counter tables.
inline constexpr std::size_t kMemoryStructureCount =
    static_cast<std::size_t>(MemoryStructure::kTextureMemory) + 1;
static_assert(kMemoryStructureCount == 7,
              "update the structure token table when appending structures");

/// Console-log decode token for a structure ("DRAM", "RF", ...).
[[nodiscard]] std::string_view structure_token(MemoryStructure s) noexcept;
[[nodiscard]] std::optional<MemoryStructure> parse_structure_token(std::string_view text) noexcept;

/// Physical GPU card identifier (stable across node moves / hot-spare
/// swaps; the fleet ledger maps (node, time) -> card).
using CardId = std::int32_t;
inline constexpr CardId kInvalidCard = -1;

/// Batch-job identifier.
using JobId = std::int64_t;
inline constexpr JobId kNoJob = -1;

/// User identifier (the paper uses userID as an application proxy, Fig 20).
using UserId = std::int32_t;
inline constexpr UserId kNoUser = -1;

/// Ground-truth error event.
struct Event {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  CardId card = kInvalidCard;
  ErrorKind kind = ErrorKind::kSingleBitError;
  MemoryStructure structure = MemoryStructure::kNone;
  JobId job = kNoJob;
  UserId user = kNoUser;
  /// Index (into the owning event vector) of the parent event when this
  /// record is a propagated "child" (same failure reported again on another
  /// node of the job, or a follow-on error); -1 for root events.
  std::int64_t parent = -1;

  [[nodiscard]] bool is_child() const noexcept { return parent >= 0; }
};

/// Sort events by (time, node, kind) -- the canonical stream order.
void sort_events(std::vector<Event>& events);

/// Extract the timestamps of all events matching `kind` (sorted if the
/// input is sorted).
[[nodiscard]] std::vector<stats::TimeSec> times_of(const std::vector<Event>& events,
                                                   ErrorKind kind);

}  // namespace titan::xid
