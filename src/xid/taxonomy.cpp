#include "xid/taxonomy.hpp"

namespace titan::xid {

namespace {

constexpr std::array<ErrorInfo, kErrorKindCount> kRegistry = {{
    {ErrorKind::kSingleBitError, std::nullopt, "Single Bit Error (corrected by the SECDED ECC)",
     ErrorClass::kHardware, kCauseHardware, /*crashes=*/false, /*per_job=*/false,
     /*thermal=*/false, /*bursty=*/false},
    {ErrorKind::kDoubleBitError, 48, "Double Bit Error (detected by SECDED ECC, not corrected)",
     ErrorClass::kHardware, kCauseHardware, true, false, true, false},
    {ErrorKind::kOffTheBus, std::nullopt, "Off the Bus", ErrorClass::kHardware,
     kCauseSystemIntegration | kCauseBusError | kCauseThermal, true, false, true, false},
    {ErrorKind::kDisplayEngine, 56, "Display Engine error", ErrorClass::kHardware, kCauseHardware,
     true, false, false, false},
    {ErrorKind::kVideoMemProgramming, 57, "Error programming video memory interface",
     ErrorClass::kAmbiguous, kCauseHardware | kCauseDriver, true, false, false, false},
    {ErrorKind::kUnstableVideoMem, 58, "Unstable video memory interface detected",
     ErrorClass::kAmbiguous, kCauseHardware | kCauseDriver, true, false, false, false},
    {ErrorKind::kPageRetirement, 63, "ECC page retirement error", ErrorClass::kHardware,
     kCauseHardware, false, false, true, false},
    {ErrorKind::kPageRetirementFailed, 64, "ECC page retirement recording failure",
     ErrorClass::kHardware, kCauseHardware, false, false, true, false},
    {ErrorKind::kVideoProcessorHw, 65, "Video processor exception", ErrorClass::kHardware,
     kCauseHardware, true, false, false, false},
    {ErrorKind::kGraphicsEngineException, 13, "Graphics Engine Exception",
     ErrorClass::kSoftwareFirmware,
     kCauseDriver | kCauseUserApp | kCauseFbCorruption | kCauseBusError | kCauseThermal, true,
     true, false, true},
    {ErrorKind::kMemoryPageFault, 31, "GPU memory page fault", ErrorClass::kSoftwareFirmware,
     kCauseDriver | kCauseUserApp, true, true, false, true},
    {ErrorKind::kCorruptedPushBuffer, 32, "Invalid or corrupted push buffer stream",
     ErrorClass::kSoftwareFirmware,
     kCauseDriver | kCauseUserApp | kCauseFbCorruption | kCauseBusError | kCauseThermal, true,
     false, false, false},
    {ErrorKind::kDriverFirmware, 38, "Driver firmware error", ErrorClass::kSoftwareFirmware,
     kCauseDriver, true, false, false, false},
    {ErrorKind::kVideoProcessorDriver, 42, "Video processor exception (driver)",
     ErrorClass::kSoftwareFirmware, kCauseDriver, true, false, false, false},
    {ErrorKind::kGpuStoppedProcessing, 43, "GPU stopped processing", ErrorClass::kSoftwareFirmware,
     kCauseDriver, true, true, false, false},
    {ErrorKind::kCtxSwitchFault, 44, "Graphics Engine fault during context switch",
     ErrorClass::kSoftwareFirmware, kCauseDriver, true, false, false, false},
    {ErrorKind::kPreemptiveCleanup, 45, "Preemptive cleanup, due to previous errors",
     ErrorClass::kSoftwareFirmware, kCauseDriver, false, true, false, false},
    {ErrorKind::kUcHaltOldDriver, 59, "Internal micro-controller halt (old driver)",
     ErrorClass::kSoftwareFirmware, kCauseDriver, true, false, false, false},
    {ErrorKind::kUcHaltNewDriver, 62, "Internal micro-controller halt (new driver, thermal)",
     ErrorClass::kSoftwareFirmware, kCauseDriver | kCauseThermal, true, false, true, false},
    {ErrorKind::kNvLinkError, 74, "NVLink link error", ErrorClass::kHardware,
     kCauseHardware | kCauseBusError | kCauseSystemIntegration, true, false, false, true},
    {ErrorKind::kRowRemap, std::nullopt, "Row-remapping event recorded",
     ErrorClass::kHardware, kCauseHardware, false, false, true, false},
    {ErrorKind::kRowRemapFailed, std::nullopt, "Row-remapping recording failure",
     ErrorClass::kHardware, kCauseHardware, false, false, true, false},
    {ErrorKind::kSilentDataCorruption, std::nullopt,
     "Silent data corruption (no XID; caught by redundant compute)",
     ErrorClass::kHardware, kCauseHardware, false, false, false, false},
}};

constexpr std::array<std::string_view, kErrorKindCount> kTokens = {
    "SBE",   "DBE",   "OTB",   "XID56", "XID57", "XID58", "XID63", "XID64", "XID65", "XID13",
    "XID31", "XID32", "XID38", "XID42", "XID43", "XID44", "XID45", "XID59", "XID62", "XID74",
    "REMAP", "REMAPF", "SDC",
};

static_assert(kRegistry.back().kind == ErrorKind::kSilentDataCorruption,
              "registry rows must stay in ErrorKind declaration order");

constexpr std::array<ErrorKind, 8> kTable1 = {
    ErrorKind::kSingleBitError,   ErrorKind::kDoubleBitError,   ErrorKind::kOffTheBus,
    ErrorKind::kDisplayEngine,    ErrorKind::kVideoMemProgramming, ErrorKind::kUnstableVideoMem,
    ErrorKind::kPageRetirement,   ErrorKind::kVideoProcessorHw,
};

constexpr std::array<ErrorKind, 12> kTable2 = {
    ErrorKind::kGraphicsEngineException, ErrorKind::kMemoryPageFault,
    ErrorKind::kCorruptedPushBuffer,     ErrorKind::kDriverFirmware,
    ErrorKind::kVideoProcessorDriver,    ErrorKind::kGpuStoppedProcessing,
    ErrorKind::kCtxSwitchFault,          ErrorKind::kPreemptiveCleanup,
    ErrorKind::kVideoMemProgramming,     ErrorKind::kUnstableVideoMem,
    ErrorKind::kUcHaltOldDriver,         ErrorKind::kUcHaltNewDriver,
};

}  // namespace

std::span<const ErrorInfo> all_errors() noexcept { return kRegistry; }

const ErrorInfo& info(ErrorKind kind) noexcept {
  return kRegistry[static_cast<std::size_t>(kind)];
}

std::optional<ErrorKind> from_xid(int xid_code) noexcept {
  for (const auto& e : kRegistry) {
    if (e.xid && *e.xid == xid_code) return e.kind;
  }
  return std::nullopt;
}

std::string_view token(ErrorKind kind) noexcept {
  return kTokens[static_cast<std::size_t>(kind)];
}

std::optional<ErrorKind> parse_token(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kTokens.size(); ++i) {
    if (kTokens[i] == text) return static_cast<ErrorKind>(i);
  }
  return std::nullopt;
}

std::span<const ErrorKind> table1_hardware() noexcept { return kTable1; }
std::span<const ErrorKind> table2_software() noexcept { return kTable2; }

}  // namespace titan::xid
