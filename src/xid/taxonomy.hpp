// GPU error taxonomy: the union of the paper's Table 1 (hardware-related
// errors) and Table 2 (software/firmware-related errors), plus the two
// hardware conditions that carry no XID code (SBE and Off-the-bus).
//
// Each entry records everything the paper's analyses key on:
//  * XID code (when the condition has one),
//  * hardware vs software/firmware classification (note some XIDs appear
//    in BOTH paper tables -- 57 and 58 -- because "determining the precise
//    source of a particular error is not always possible"),
//  * NVIDIA's documented possible causes,
//  * whether the error crashes the running application,
//  * whether the console log reports it on every node of the affected job
//    (user-application errors do; isolated hardware events do not),
//  * whether the family is temperature-sensitive,
//  * whether the family shows bursty arrivals (Observation 6).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace titan::xid {

/// Unified error-kind enumeration covering every row of Tables 1 and 2.
enum class ErrorKind : std::uint8_t {
  kSingleBitError,          ///< corrected by SECDED ECC; no XID, smi counters only
  kDoubleBitError,          ///< XID 48; detected, not corrected; crashes the app
  kOffTheBus,               ///< no XID; host loses the GPU (system integration)
  kDisplayEngine,           ///< XID 56
  kVideoMemProgramming,     ///< XID 57 (both tables)
  kUnstableVideoMem,        ///< XID 58 (both tables)
  kPageRetirement,          ///< XID 63: retirement recorded in InfoROM
  kPageRetirementFailed,    ///< XID 64: retirement recording failed
  kVideoProcessorHw,        ///< XID 65 (Table 1 flavor)
  kGraphicsEngineException, ///< XID 13
  kMemoryPageFault,         ///< XID 31
  kCorruptedPushBuffer,     ///< XID 32
  kDriverFirmware,          ///< XID 38
  kVideoProcessorDriver,    ///< XID 42 (Table 2 flavor; never observed on Titan)
  kGpuStoppedProcessing,    ///< XID 43
  kCtxSwitchFault,          ///< XID 44
  kPreemptiveCleanup,       ///< XID 45
  kUcHaltOldDriver,         ///< XID 59 (old driver stack)
  kUcHaltNewDriver,         ///< XID 62 (new driver stack; thermal)
  // Post-Titan kinds (A100/H100-era fleets; see src/profile).  Appended
  // after the Titan rows so the 19 paper kinds keep their wire values.
  kNvLinkError,             ///< XID 74: NVLink link error (no Titan analog)
  kRowRemap,                ///< row-remapping recorded (A100+ replacement for 63)
  kRowRemapFailed,          ///< row-remapping recording failure (analog of 64)
  kSilentDataCorruption,    ///< SDC: no XID at all; detected by duplicate compute
};

/// Derived from the enum's last value: adding a kind can never silently
/// truncate the registry/token tables below.
inline constexpr std::size_t kErrorKindCount =
    static_cast<std::size_t>(ErrorKind::kSilentDataCorruption) + 1;
static_assert(kErrorKindCount == 23, "update the taxonomy tables when appending kinds");

/// High-level source classification matching the two paper tables.
enum class ErrorClass : std::uint8_t {
  kHardware,        ///< Table 1 only
  kSoftwareFirmware,///< Table 2 only
  kAmbiguous,       ///< appears in both tables (XIDs 57, 58)
};

/// NVIDIA's documented "possible cause" flags (Table 2 parentheticals).
enum Cause : std::uint8_t {
  kCauseHardware = 1U << 0,
  kCauseDriver = 1U << 1,
  kCauseUserApp = 1U << 2,
  kCauseFbCorruption = 1U << 3,  ///< system memory or framebuffer corruption
  kCauseBusError = 1U << 4,
  kCauseThermal = 1U << 5,
  kCauseSystemIntegration = 1U << 6,
};

/// Static description of one error kind.
struct ErrorInfo {
  ErrorKind kind{};
  std::optional<int> xid;     ///< XID code, when the condition has one
  std::string_view name;      ///< paper wording
  ErrorClass klass{};
  std::uint8_t causes = 0;    ///< bitmask of Cause
  bool crashes_app = false;   ///< terminates the running application
  bool reported_per_job = false;  ///< console log repeats it on all job nodes
  bool thermally_sensitive = false;
  bool bursty = false;        ///< Observation 6 arrival character
};

/// Immutable registry of all error kinds.
[[nodiscard]] std::span<const ErrorInfo> all_errors() noexcept;

/// Lookup by kind (total function).
[[nodiscard]] const ErrorInfo& info(ErrorKind kind) noexcept;

/// Lookup by XID code.  Codes 57/58/65-vs-42 map to their Table 1 flavor
/// first; std::nullopt for unknown codes.
[[nodiscard]] std::optional<ErrorKind> from_xid(int xid_code) noexcept;

/// Short machine-readable token used in console lines ("DBE", "XID13",
/// "OTB", "SBE", ...).  Round-trips through parse_token.
[[nodiscard]] std::string_view token(ErrorKind kind) noexcept;
[[nodiscard]] std::optional<ErrorKind> parse_token(std::string_view text) noexcept;

/// Rows of paper Table 1 (hardware) in paper order.
[[nodiscard]] std::span<const ErrorKind> table1_hardware() noexcept;
/// Rows of paper Table 2 (software/firmware) in paper order.
[[nodiscard]] std::span<const ErrorKind> table2_software() noexcept;

}  // namespace titan::xid
