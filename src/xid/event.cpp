#include "xid/event.hpp"

#include <algorithm>
#include <array>

namespace titan::xid {

namespace {
constexpr std::array<std::string_view, kMemoryStructureCount> kStructureTokens = {
    "NONE", "DRAM", "RF", "L2", "L1SHM", "ROC", "TEX",
};
}  // namespace

std::string_view structure_token(MemoryStructure s) noexcept {
  return kStructureTokens[static_cast<std::size_t>(s)];
}

std::optional<MemoryStructure> parse_structure_token(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kStructureTokens.size(); ++i) {
    if (kStructureTokens[i] == text) return static_cast<MemoryStructure>(i);
  }
  return std::nullopt;
}

void sort_events(std::vector<Event>& events) {
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.node != b.node) return a.node < b.node;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
}

std::vector<stats::TimeSec> times_of(const std::vector<Event>& events, ErrorKind kind) {
  std::vector<stats::TimeSec> out;
  for (const auto& e : events) {
    if (e.kind == kind) out.push_back(e.time);
  }
  return out;
}

}  // namespace titan::xid
