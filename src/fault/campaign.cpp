#include "fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "fault/hotspare.hpp"
#include "par/parallel.hpp"
#include "stats/distributions.hpp"
#include "topology/torus.hpp"

namespace titan::fault {

namespace {

using stats::TimeSec;
using topology::NodeId;
using xid::CardId;
using xid::ErrorKind;
using xid::Event;
using xid::MemoryStructure;

constexpr double kSecondsPerDayD = 86400.0;

/// Cards per parallel task in the per-card phases.  Most cards do little
/// work (a handful of reboot ops), so batches must be large enough to
/// amortize dispatch; the SBE-prone minority dominates runtime anyway.
constexpr std::size_t kCardGrain = 64;
/// Jobs per parallel task in the software-XID phase (most jobs are not
/// debug jobs and cost one branch).
constexpr std::size_t kJobGrain = 256;

[[nodiscard]] TimeSec to_timesec(double seconds) {
  return static_cast<TimeSec>(std::llround(seconds));
}

/// All compute NodeIds, ascending.  Built once per process: membership is
/// a property of the machine geometry, not of any one campaign.
[[nodiscard]] const std::vector<NodeId>& compute_nodes() {
  static const std::vector<NodeId> nodes = [] {
    std::vector<NodeId> out;
    out.reserve(static_cast<std::size_t>(topology::kComputeNodes));
    for (NodeId n = 0; n < topology::kNodeSlots; ++n) {
      if (!topology::is_service_node(n)) out.push_back(n);
    }
    return out;
  }();
  return nodes;
}

/// Monthly maintenance reboot instants within the period.
[[nodiscard]] std::vector<TimeSec> maintenance_reboots(const stats::StudyPeriod& period,
                                                       int day_of_month) {
  std::vector<TimeSec> out;
  for (int m = 0; m < period.months(); ++m) {
    const TimeSec t = stats::month_start(period.begin, m) +
                      (day_of_month - 1) * stats::kSecondsPerDay +
                      6 * stats::kSecondsPerHour;
    if (period.contains(t)) out.push_back(t);
  }
  return out;
}

/// Ramp-shaped monthly intensity of the OTB epidemic (solder joints fail
/// increasingly with thermal cycling until the rework).
[[nodiscard]] TimeSec sample_epidemic_time(const stats::StudyPeriod& period, TimeSec fix,
                                           stats::Rng& rng) {
  const int months = stats::month_index(fix - 1, period.begin) + 1;
  std::vector<double> weights(static_cast<std::size_t>(months));
  for (int m = 0; m < months; ++m) {
    // Linear ramp with a late-epidemic plateau.
    weights[static_cast<std::size_t>(m)] = 0.4 + 1.6 * static_cast<double>(m + 1) /
                                                     static_cast<double>(months);
  }
  const stats::DiscreteSampler pick{weights};
  const int month = static_cast<int>(pick(rng));
  const TimeSec lo = stats::month_start(period.begin, month);
  const TimeSec hi = std::min(fix, stats::month_start(period.begin, month + 1));
  return lo + static_cast<TimeSec>(rng.below(static_cast<std::uint64_t>(hi - lo)));
}

}  // namespace

std::vector<CardTraits> initialize_fleet(gpu::Fleet& fleet, stats::TimeSec when,
                                         stats::Rng rng, const FaultModelParams& model) {
  if (fleet.card_count() != 0) throw std::invalid_argument{"initialize_fleet: fleet not empty"};
  const auto& nodes = compute_nodes();
  const auto populate = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(model.fleet_node_fraction * static_cast<double>(nodes.size()))),
      1, nodes.size());
  for (std::size_t i = 0; i < populate; ++i) {
    const CardId serial = fleet.procure();
    fleet.card(serial).set_retired_page_capacity(model.retired_page_capacity);
    fleet.install(nodes[i], serial, when);
  }
  return sample_card_traits(fleet.card_count(), rng, model);
}

CampaignSchedule plan_fault_campaign(gpu::Fleet& fleet, std::vector<CardTraits> traits,
                                     const CampaignParams& params, stats::Rng rng) {
  if (fleet.card_count() != traits.size()) {
    throw std::invalid_argument{"plan_fault_campaign: traits must match fleet size"};
  }
  const auto& period = params.period;
  const auto& timeline = params.timeline;
  const FaultModelParams& model = params.model;
  const double window_days = static_cast<double>(period.duration()) / kSecondsPerDayD;

  CampaignSchedule plan;
  plan.params = params;
  plan.rng = rng;
  plan.traits = std::move(traits);

  // Card-bearing node roster: every compute node at fleet_node_fraction
  // 1.0 (Titan), a prefix of the machine for smaller fleets.  All the
  // hardware phases draw nodes from this roster only.
  plan.nodes.reserve(compute_nodes().size());
  for (const NodeId node : compute_nodes()) {
    if (fleet.ledger().card_at(node, period.begin) != xid::kInvalidCard) {
      plan.nodes.push_back(node);
    }
  }
  const std::vector<NodeId>& nodes = plan.nodes;

  // Per-card stints; replacements appended as they are procured.
  plan.stints.resize(plan.traits.size());
  for (const NodeId node : nodes) {
    const CardId card = fleet.ledger().card_at(node, period.begin);
    plan.stints[static_cast<std::size_t>(card)].push_back(
        Stint{node, period.begin, period.end});
  }

  // -------------------------------------------------------------------------
  // Phase A: schedule DBE root strikes (fleet Poisson, weighted nodes).
  // -------------------------------------------------------------------------
  auto dbe_rng = rng.fork("dbe");
  std::vector<HardwareStrike> dbe_strikes;
  dbe_strikes.reserve(static_cast<std::size_t>(
                          1.25 * window_days * 24.0 / model.dbe_mtbf_hours) +
                      16);
  {
    std::vector<double> weights;
    weights.reserve(nodes.size());
    for (const NodeId node : nodes) {
      const CardId card = fleet.ledger().card_at(node, period.begin);
      const auto loc = topology::locate(node);
      weights.push_back(plan.traits[static_cast<std::size_t>(card)].dbe_weight *
                        topology::thermal_rate_multiplier(params.thermal, loc,
                                                          model.dbe_thermal_factor));
    }
    const stats::DiscreteSampler pick{weights};
    const double rate = 1.0 / (model.dbe_mtbf_hours * 3600.0);
    for (const double t : stats::sample_poisson_process(
             dbe_rng, rate, static_cast<double>(period.begin), static_cast<double>(period.end))) {
      HardwareStrike s;
      s.time = to_timesec(t);
      s.node = nodes[pick(dbe_rng)];
      s.structure = sample_dbe_structure(dbe_rng, model.dbe_device_share);
      if (s.structure == MemoryStructure::kDeviceMemory) {
        s.page = static_cast<std::uint32_t>(dbe_rng.below(model.device_pages));
      }
      dbe_strikes.push_back(s);
    }
    // (time, node) key: equal-timestamp ordering is deterministic by
    // construction, not by the sort implementation's tie behaviour.
    std::stable_sort(dbe_strikes.begin(), dbe_strikes.end(), [](const auto& a, const auto& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.node < b.node;
    });
  }

  // -------------------------------------------------------------------------
  // Phase B: hot-spare workflow (pull cards at the DBE threshold).
  // -------------------------------------------------------------------------
  auto spare_rng = rng.fork("hot-spare");
  std::unordered_map<CardId, std::uint64_t> dbe_count;
  for (const auto& strike : dbe_strikes) {
    const CardId card = fleet.ledger().card_at(strike.node, strike.time);
    if (card == xid::kInvalidCard) continue;
    if (++dbe_count[card] < model.hot_spare_pull_threshold) continue;

    const TimeSec pull_time = strike.time + stats::kSecondsPerDay;
    if (!period.contains(pull_time)) continue;
    // Close the card's stint and swap in a freshly procured spare.
    auto& card_stints = plan.stints[static_cast<std::size_t>(card)];
    if (card_stints.empty() || card_stints.back().to <= pull_time) continue;  // already pulled
    card_stints.back().to = pull_time;

    const CardId spare = fleet.procure();
    fleet.card(spare).set_retired_page_capacity(model.retired_page_capacity);
    auto spare_trait_rng = spare_rng.fork("spare-traits", static_cast<std::uint64_t>(spare));
    plan.traits.push_back(sample_one_card(spare_trait_rng, model));
    plan.stints.emplace_back();
    plan.stints.back().push_back(Stint{strike.node, pull_time, period.end});
    fleet.install(strike.node, spare, pull_time);

    HotSpareAction action;
    action.pulled_at = pull_time;
    action.card = card;
    action.node = strike.node;
    action.replacement = spare;
    // Burn-in in the hot-spare cluster; the RMA decision emerges from the
    // card's latent susceptibility under accelerated stress.
    fleet.card(card).set_health(gpu::CardHealth::kHotSpare);
    auto stress_rng = spare_rng.fork("stress", static_cast<std::uint64_t>(card));
    StressTestParams stress_params;
    stress_params.device_pages = model.device_pages;
    const auto stress = stress_test_card(fleet.card(card),
                                         plan.traits[static_cast<std::size_t>(card)],
                                         stress_params, pull_time, stress_rng);
    // Pass -> re-qualified spare stock (kShelf); fail -> RMA'd to the
    // vendor.  Either way the card does not return to production here.
    action.failed_stress = stress.returned_to_vendor;
    plan.hot_spare_actions.push_back(action);
  }

  // -------------------------------------------------------------------------
  // Phase C: Off-the-bus strikes.
  // -------------------------------------------------------------------------
  auto otb_rng = rng.fork("otb");
  plan.otb_strikes.reserve(static_cast<std::size_t>(
                               1.25 * (static_cast<double>(nodes.size()) *
                                           model.otb_defect_probability *
                                           model.otb_manifest_probability +
                                       model.otb_residual_per_day * window_days)) +
                           16);
  {
    // Epidemic era: each defective original card may manifest once, with
    // probability scaled by its cage temperature (normalized to the middle
    // cage so the fleet-average stays near the calibrated value).
    for (const NodeId node : nodes) {
      const CardId card = fleet.ledger().card_at(node, period.begin);
      if (!plan.traits[static_cast<std::size_t>(card)].solder_defect) continue;
      const auto loc = topology::locate(node);
      auto mid = loc;
      mid.cage = 1;
      const double scale =
          topology::thermal_rate_multiplier(params.thermal, loc, model.otb_thermal_factor) /
          topology::thermal_rate_multiplier(params.thermal, mid, model.otb_thermal_factor);
      auto card_rng = otb_rng.fork("epidemic", static_cast<std::uint64_t>(card));
      if (!card_rng.bernoulli(std::min(0.95, model.otb_manifest_probability * scale))) continue;
      HardwareStrike s;
      s.time = sample_epidemic_time(period, timeline.solder_fix, card_rng);
      s.node = node;
      plan.otb_strikes.push_back(s);
    }
    // Post-rework residual trickle.
    for (const double t : stats::sample_poisson_process(
             otb_rng, model.otb_residual_per_day / kSecondsPerDayD,
             static_cast<double>(timeline.solder_fix), static_cast<double>(period.end))) {
      HardwareStrike s;
      s.time = to_timesec(t);
      s.node = nodes[otb_rng.below(nodes.size())];
      plan.otb_strikes.push_back(s);
    }
    std::stable_sort(plan.otb_strikes.begin(), plan.otb_strikes.end(),
                     [](const auto& a, const auto& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.node < b.node;
                     });
  }

  // Index DBE strikes and crash reboots by node for phase D's per-card
  // stint scans.
  for (const auto& s : dbe_strikes) {
    plan.dbe_by_node[s.node].push_back(s);
    plan.crash_reboots[s.node].push_back(s.time + 600);  // warm boot after DBE
  }
  for (const auto& s : plan.otb_strikes) {
    plan.crash_reboots[s.node].push_back(s.time + stats::kSecondsPerDay);  // repair
  }
  plan.maintenance = maintenance_reboots(period, model.maintenance_day_of_month);
  return plan;
}

std::vector<CardStream> run_card_streams(const CampaignSchedule& plan, gpu::Fleet& fleet,
                                         const sched::JobTrace& trace,
                                         std::size_t first_card, std::size_t last_card,
                                         bool collect_sbe) {
  if (last_card > plan.traits.size() || first_card > last_card) {
    throw std::invalid_argument{"run_card_streams: card range out of bounds"};
  }
  const auto& period = plan.params.period;
  const auto& timeline = plan.params.timeline;
  const FaultModelParams& model = plan.params.model;
  // Repair recording events: XID 63/64 page retirement on Titan, row
  // remapping (REMAP/REMAPF) on row-remapping fleets.  Same mechanism,
  // different console vocabulary.
  const bool remap = model.repair_policy == MemoryRepairPolicy::kRowRemapping;
  const ErrorKind repair_recorded = remap ? ErrorKind::kRowRemap : ErrorKind::kPageRetirement;
  const ErrorKind repair_failed =
      remap ? ErrorKind::kRowRemapFailed : ErrorKind::kPageRetirementFailed;

  enum class OpKind : std::uint8_t { kEnableRetirement, kReboot, kSbe, kDbe };
  struct Op {
    TimeSec time = 0;
    OpKind kind = OpKind::kSbe;
    MemoryStructure structure = MemoryStructure::kNone;
    std::uint32_t page = 0;
    bool weak = false;
    NodeId node = topology::kInvalidNode;
  };

  // GPU-activity thinning for SBE strikes: busy silicon accumulates more
  // strikes than parked silicon (the mechanism behind Fig. 19's core-hour
  // correlation beating Fig. 18's node-count one).
  const auto sbe_acceptance = [&](NodeId node, TimeSec when) {
    const xid::JobId job = trace.job_at(node, when);
    if (job == xid::kNoJob) return model.sbe_idle_acceptance;
    const auto& record = trace.job(job);
    const double node_hours =
        static_cast<double>(record.node_count()) * record.wall_hours();
    const double duty =
        node_hours > 0.0 ? std::clamp(record.gpu_core_hours / node_hours, 0.0, 1.0) : 0.0;
    return model.sbe_idle_acceptance + model.sbe_duty_acceptance * duty;
  };

  // Each card owns its forked `ecc/card/<serial>` stream, its own GpuCard
  // and its own output vectors, so cards are processed concurrently and
  // the result is independent of thread count -- and of how the fleet is
  // partitioned into ranges -- by construction.
  auto ecc_rng = plan.rng.fork("ecc");
  const auto process_card = [&](std::size_t serial) -> CardStream {
    CardStream out;
    const CardTraits& trait = plan.traits[serial];
    gpu::GpuCard& card = fleet.card(static_cast<CardId>(serial));
    auto card_rng = ecc_rng.fork("card", serial);

    std::vector<Op> ops;
    ops.reserve(plan.maintenance.size() + 4 * trait.weak_cells.size() + 8);
    bool card_has_dbe = false;
    for (const Stint& stint : plan.stints[serial]) {
      const auto from_d = static_cast<double>(stint.from);
      const auto to_d = static_cast<double>(stint.to);
      // Background SBEs.
      if (trait.background_sbe_per_day > 0.0) {
        for (const double t : stats::sample_poisson_process(
                 card_rng, trait.background_sbe_per_day / kSecondsPerDayD, from_d, to_d)) {
          if (!card_rng.bernoulli(sbe_acceptance(stint.node, to_timesec(t)))) continue;
          Op op;
          op.time = to_timesec(t);
          op.kind = OpKind::kSbe;
          op.structure = sample_sbe_structure(card_rng);
          if (op.structure == MemoryStructure::kDeviceMemory) {
            op.page = static_cast<std::uint32_t>(card_rng.below(model.device_pages));
          }
          op.node = stint.node;
          ops.push_back(op);
        }
      }
      // Weak cells.
      for (const WeakCell& cell : trait.weak_cells) {
        for (const double t : stats::sample_poisson_process(
                 card_rng, cell.sbe_per_day / kSecondsPerDayD, from_d, to_d)) {
          if (!card_rng.bernoulli(sbe_acceptance(stint.node, to_timesec(t)))) continue;
          Op op;
          op.time = to_timesec(t);
          op.kind = OpKind::kSbe;
          op.structure = cell.structure;
          op.page = cell.page;
          op.weak = true;
          op.node = stint.node;
          ops.push_back(op);
        }
      }
      // DBE strikes landing on this card's stint.
      if (const auto it = plan.dbe_by_node.find(stint.node); it != plan.dbe_by_node.end()) {
        for (const auto& s : it->second) {
          if (s.time < stint.from || s.time >= stint.to) continue;
          Op op;
          op.time = s.time;
          op.kind = OpKind::kDbe;
          op.structure = s.structure;
          op.page = s.page;
          op.node = stint.node;
          ops.push_back(op);
          card_has_dbe = true;
        }
      }
      // Reboots seen by this card.
      const auto add_reboot = [&](TimeSec t) {
        if (t < stint.from || t >= stint.to) return;
        Op op;
        op.time = t;
        op.kind = OpKind::kReboot;
        op.node = stint.node;
        ops.push_back(op);
      };
      for (const TimeSec t : plan.maintenance) add_reboot(t);
      if (const auto it = plan.crash_reboots.find(stint.node); it != plan.crash_reboots.end()) {
        for (const TimeSec t : it->second) add_reboot(t);
      }
    }
    if (ops.empty() && !card_has_dbe) return out;
    if (timeline.retirement_enabled(period.begin)) {
      card.retirement().set_enabled(true);
    } else {
      Op op;
      op.time = timeline.new_driver;
      op.kind = OpKind::kEnableRetirement;
      ops.push_back(op);
    }
    std::stable_sort(ops.begin(), ops.end(),
                     [](const Op& a, const Op& b) { return a.time < b.time; });

    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kEnableRetirement:
          card.retirement().set_enabled(true);
          break;
        case OpKind::kReboot:
          card.on_reboot();
          break;
        case OpKind::kSbe: {
          const bool device = op.structure == MemoryStructure::kDeviceMemory;
          if (device && card.retirement().page_blacklisted(op.page)) {
            break;  // the weak page is retired: the cell is silent now
          }
          const auto outcome = card.record_sbe(
              op.structure, device ? std::optional<std::uint32_t>{op.page} : std::nullopt,
              op.time);
          if (collect_sbe) {
            SbeStrike strike;
            strike.time = op.time;
            strike.node = op.node;
            strike.card = static_cast<CardId>(serial);
            strike.structure = op.structure;
            strike.page = op.page;
            strike.from_weak_cell = op.weak;
            out.sbe_strikes.push_back(strike);
          }
          if (outcome.retirement) {
            const TimeSec when = op.time + 5 + static_cast<TimeSec>(card_rng.below(55));
            if (period.contains(when)) {
              Event ev;
              ev.time = when;
              ev.node = op.node;
              ev.card = static_cast<CardId>(serial);
              ev.kind = outcome.retirement_recorded ? repair_recorded : repair_failed;
              ev.structure = MemoryStructure::kDeviceMemory;
              out.events.push_back(ev);
            }
          }
          break;
        }
        case OpKind::kDbe: {
          const bool device = op.structure == MemoryStructure::kDeviceMemory;
          const bool commit = !card_rng.bernoulli(model.dbe_inforom_loss_probability);
          const auto outcome = card.record_dbe(
              op.structure, device ? std::optional<std::uint32_t>{op.page} : std::nullopt,
              op.time, commit);
          Event dbe_ev;
          dbe_ev.time = op.time;
          dbe_ev.node = op.node;
          dbe_ev.card = static_cast<CardId>(serial);
          dbe_ev.kind = ErrorKind::kDoubleBitError;
          dbe_ev.structure = op.structure;
          out.events.push_back(dbe_ev);
          const auto dbe_index = static_cast<std::int64_t>(out.events.size()) - 1;

          if (outcome.retirement && card_rng.bernoulli(model.retirement_logged_after_dbe)) {
            const TimeSec when =
                op.time + 30 +
                static_cast<TimeSec>(card_rng.below(
                    static_cast<std::uint64_t>(model.retirement_fast_max_s - 30.0)));
            if (period.contains(when)) {
              Event ev;
              ev.time = when;
              ev.node = op.node;
              ev.card = static_cast<CardId>(serial);
              ev.kind = (outcome.retirement_recorded || !commit) ? repair_recorded
                                                                 : repair_failed;
              ev.structure = MemoryStructure::kDeviceMemory;
              ev.parent = dbe_index;
              out.events.push_back(ev);
            }
          }
          // Preemptive cleanup often follows a DBE (Fig. 13: 48 -> 45).
          if (card_rng.bernoulli(model.dbe_followed_by_45)) {
            const TimeSec when = op.time + 1 + static_cast<TimeSec>(card_rng.below(119));
            if (period.contains(when)) {
              Event ev;
              ev.time = when;
              ev.node = op.node;
              ev.card = static_cast<CardId>(serial);
              ev.kind = ErrorKind::kPreemptiveCleanup;
              ev.parent = dbe_index;
              out.events.push_back(ev);
            }
          }
          break;
        }
      }
    }
    return out;
  };
  return par::parallel_map(first_card, last_card, kCardGrain, process_card);
}

TailStream run_campaign_tail(const CampaignSchedule& plan, const gpu::Fleet& fleet,
                             const sched::JobTrace& trace) {
  const auto& period = plan.params.period;
  const auto& timeline = plan.params.timeline;
  const FaultModelParams& model = plan.params.model;
  const std::vector<NodeId>& nodes = plan.nodes.empty() ? compute_nodes() : plan.nodes;
  const double window_days = static_cast<double>(period.duration()) / kSecondsPerDayD;

  TailStream result;

  auto sw_rng = plan.rng.fork("software");
  const auto& jobs = trace.jobs();

  // Debug-job crashes: user-application XIDs reported on every node of the
  // job within the five-second propagation window (Observation 7).  Each
  // job draws only from its own `software/debug-job/<id>` fork, so jobs
  // are generated concurrently; parent links are local to each job's
  // vector and rebased on concatenation.
  const auto process_job = [&](std::size_t j) -> std::vector<Event> {
    std::vector<Event> out;
    const auto& job = jobs[j];
    if (!job.debug || job.nodes.empty()) return out;
    auto job_rng = sw_rng.fork("debug-job", static_cast<std::uint64_t>(job.id));
    const double u = job_rng.uniform();
    ErrorKind kind{};
    if (u < model.debug_job_xid13_probability) {
      kind = ErrorKind::kGraphicsEngineException;
    } else if (u < model.debug_job_xid13_probability + model.debug_job_xid31_probability) {
      kind = ErrorKind::kMemoryPageFault;
    } else {
      return out;  // crashed CPU-side or exited cleanly after debugging
    }
    const TimeSec crash = std::max(job.start + 1, job.end - 2);
    const std::size_t root_pick = job_rng.below(job.nodes.size());

    Event root;
    root.time = crash;
    root.node = job.nodes[root_pick];
    root.kind = kind;
    root.job = job.id;
    root.user = job.user;
    out.push_back(root);
    const std::int64_t root_index = 0;

    for (std::size_t i = 0; i < job.nodes.size(); ++i) {
      if (i == root_pick) continue;
      Event child = root;
      child.node = job.nodes[i];
      child.time = crash + static_cast<TimeSec>(
                               job_rng.below(static_cast<std::uint64_t>(model.job_propagation_window_s)));
      child.parent = root_index;
      out.push_back(child);
    }
    if (kind == ErrorKind::kGraphicsEngineException &&
        job_rng.bernoulli(model.xid13_followed_by_43)) {
      Event follow = root;
      follow.kind = ErrorKind::kGpuStoppedProcessing;
      follow.time = crash + 1 + static_cast<TimeSec>(job_rng.below(59));
      follow.parent = root_index;
      out.push_back(follow);
      const auto follow_index = static_cast<std::int64_t>(out.size()) - 1;
      if (job_rng.bernoulli(model.xid43_followed_by_45)) {
        Event cleanup = follow;
        cleanup.kind = ErrorKind::kPreemptiveCleanup;
        cleanup.time = follow.time + 1 + static_cast<TimeSec>(job_rng.below(30));
        cleanup.parent = follow_index;
        out.push_back(cleanup);
      }
    }
    return out;
  };
  const std::vector<std::vector<Event>> per_job =
      par::parallel_map(0, jobs.size(), kJobGrain, process_job);
  std::size_t debug_event_total = 0;
  for (const auto& job_events : per_job) debug_event_total += job_events.size();

  // The OTB/software "tail" stream: everything that is not per-card ECC
  // output, in the provisional order OTB -> debug jobs -> driver streams
  // -> bad node.  Parent links are local to this vector.
  const double old_driver_days =
      std::max(0.0, static_cast<double>(timeline.new_driver - period.begin)) / kSecondsPerDayD;
  const double new_driver_days =
      std::max(0.0, static_cast<double>(period.end - timeline.new_driver)) / kSecondsPerDayD;
  const auto fixed_totals = static_cast<std::size_t>(
      model.xid32_total + model.xid38_total + model.xid42_total + model.xid56_total +
      model.xid57_total + model.xid58_total + model.xid65_total);
  std::vector<Event>& tail = result.events;
  tail.reserve(plan.otb_strikes.size() + debug_event_total + fixed_totals +
               static_cast<std::size_t>(
                   1.25 * ((model.xid43_per_day + model.xid44_per_day) * window_days +
                           model.xid59_per_day_old_driver * old_driver_days +
                           model.xid62_per_day_new_driver * new_driver_days +
                           1.5 * model.bad_node_xid13_per_day * 31.0 *
                               static_cast<double>(model.bad_node_active_months))) +
               64);

  // OTB events (app-fatal, isolated; no InfoROM involvement).
  for (const auto& s : plan.otb_strikes) {
    Event ev;
    ev.time = s.time;
    ev.node = s.node;
    ev.card = fleet.ledger().card_at(s.node, s.time);
    ev.kind = ErrorKind::kOffTheBus;
    tail.push_back(ev);
  }
  for (const auto& job_events : per_job) {
    const auto base = static_cast<std::int64_t>(tail.size());
    for (Event ev : job_events) {
      if (ev.parent >= 0) ev.parent += base;
      tail.push_back(ev);
    }
  }

  // Sparse driver errors: independent Poisson streams on random nodes.
  const auto emit_poisson_kind = [&](ErrorKind kind, double per_day, TimeSec from, TimeSec to) {
    if (to <= from || per_day <= 0.0) return;
    for (const double t : stats::sample_poisson_process(sw_rng, per_day / kSecondsPerDayD,
                                                        static_cast<double>(from),
                                                        static_cast<double>(to))) {
      Event ev;
      ev.time = to_timesec(t);
      ev.node = nodes[sw_rng.below(nodes.size())];
      ev.kind = kind;
      tail.push_back(ev);
    }
  };
  const auto emit_fixed_total = [&](ErrorKind kind, int total) {
    for (int i = 0; i < total; ++i) {
      Event ev;
      ev.time = period.begin + static_cast<TimeSec>(
                                   sw_rng.below(static_cast<std::uint64_t>(period.duration())));
      ev.node = nodes[sw_rng.below(nodes.size())];
      ev.kind = kind;
      tail.push_back(ev);
    }
  };
  emit_poisson_kind(ErrorKind::kGpuStoppedProcessing, model.xid43_per_day, period.begin, period.end);
  emit_poisson_kind(ErrorKind::kCtxSwitchFault, model.xid44_per_day, period.begin, period.end);
  emit_poisson_kind(ErrorKind::kUcHaltOldDriver, model.xid59_per_day_old_driver, period.begin,
                    timeline.new_driver);
  emit_poisson_kind(ErrorKind::kUcHaltNewDriver, model.xid62_per_day_new_driver, timeline.new_driver,
                    period.end);
  emit_fixed_total(ErrorKind::kCorruptedPushBuffer, model.xid32_total);
  emit_fixed_total(ErrorKind::kDriverFirmware, model.xid38_total);
  emit_fixed_total(ErrorKind::kVideoProcessorDriver, model.xid42_total);  // zero: never observed
  emit_fixed_total(ErrorKind::kDisplayEngine, model.xid56_total);
  emit_fixed_total(ErrorKind::kVideoMemProgramming, model.xid57_total);
  emit_fixed_total(ErrorKind::kUnstableVideoMem, model.xid58_total);
  emit_fixed_total(ErrorKind::kVideoProcessorHw, model.xid65_total);

  // Post-Titan fleet processes, each on its OWN named fork: adding them
  // never perturbs the `software` stream, so the K20X profile (rates 0)
  // reproduces the pre-profile campaign byte for byte.
  if (model.nvlink_per_day > 0.0) {
    auto link_rng = plan.rng.fork("nvlink");
    for (const double t : stats::sample_poisson_process(
             link_rng, model.nvlink_per_day / kSecondsPerDayD,
             static_cast<double>(period.begin), static_cast<double>(period.end))) {
      Event ev;
      ev.time = to_timesec(t);
      ev.node = nodes[link_rng.below(nodes.size())];
      ev.kind = ErrorKind::kNvLinkError;
      tail.push_back(ev);
    }
  }
  if (model.sdc_per_day > 0.0) {
    auto sdc_rng = plan.rng.fork("sdc");
    for (const double t : stats::sample_poisson_process(
             sdc_rng, model.sdc_per_day / kSecondsPerDayD,
             static_cast<double>(period.begin), static_cast<double>(period.end))) {
      Event ev;
      ev.time = to_timesec(t);
      ev.node = nodes[sdc_rng.below(nodes.size())];
      ev.kind = ErrorKind::kSilentDataCorruption;
      ev.structure = MemoryStructure::kDeviceMemory;
      tail.push_back(ev);
    }
  }

  // The Observation 8 anecdote: one node raising XID 13 regardless of the
  // application -- a hardware fault masquerading as a user error.
  if (plan.params.include_bad_node_anecdote) {
    auto bad_rng = plan.rng.fork("bad-node");
    result.bad_node = nodes[bad_rng.below(nodes.size())];
    const TimeSec active_from = stats::month_start(
        period.begin, period.months() - model.bad_node_active_months);
    for (const double t : stats::sample_poisson_process(
             bad_rng, model.bad_node_xid13_per_day / kSecondsPerDayD, static_cast<double>(active_from),
             static_cast<double>(period.end))) {
      Event ev;
      ev.time = to_timesec(t);
      ev.node = result.bad_node;
      ev.kind = ErrorKind::kGraphicsEngineException;
      tail.push_back(ev);
      if (bad_rng.bernoulli(0.5)) {
        Event follow = ev;
        follow.kind = ErrorKind::kGpuStoppedProcessing;
        follow.time = ev.time + 1 + static_cast<TimeSec>(bad_rng.below(30));
        follow.parent = static_cast<std::int64_t>(tail.size()) - 1;
        tail.push_back(follow);
      }
    }
  }
  return result;
}

CampaignResult run_fault_campaign(gpu::Fleet& fleet, std::vector<CardTraits> traits,
                                  const sched::JobTrace& trace, const CampaignParams& params,
                                  stats::Rng rng) {
  if (fleet.card_count() != traits.size()) {
    throw std::invalid_argument{"run_fault_campaign: traits must match fleet size"};
  }
  const auto& period = params.period;

  // Phases A-C: resolve the plan (named forks make phase streams
  // independent of each other and of the partitioning below).
  CampaignSchedule plan = plan_fault_campaign(fleet, std::move(traits), params, rng);

  // Phase D over the whole fleet, phase E once.
  std::vector<CardStream> per_card =
      run_card_streams(plan, fleet, trace, 0, plan.card_count(), /*collect_sbe=*/true);
  TailStream tail = run_campaign_tail(plan, fleet, trace);

  CampaignResult result;
  result.bad_node = tail.bad_node;
  result.hot_spare_actions = std::move(plan.hot_spare_actions);

  // -------------------------------------------------------------------------
  // Phase F: attribution, per-stream ordering, deterministic k-way merge.
  // -------------------------------------------------------------------------
  // The provisional index space is the concatenation [card 0 .. card N-1,
  // tail]: identical to what a serial single-vector build would produce.
  const std::size_t card_count = per_card.size();
  const std::size_t stream_count = card_count + 1;
  const auto stream_events = [&](std::size_t s) -> std::vector<Event>& {
    return s < card_count ? per_card[s].events : tail.events;
  };
  std::vector<std::size_t> offset(stream_count + 1, 0);
  for (std::size_t s = 0; s < stream_count; ++s) {
    offset[s + 1] = offset[s] + stream_events(s).size();
  }
  const std::size_t total_events = offset[stream_count];

  // Per stream: rebase parents into the provisional space, attribute
  // job/user/card, clamp to the observation window, and compute the local
  // time-sorted order (stable, i.e. ties keep provisional order).  All
  // lookups are read-only, so streams are processed concurrently.
  std::vector<std::vector<std::uint32_t>> order(stream_count);
  par::parallel_for(0, stream_count, kCardGrain, [&](std::size_t s) {
    auto& stream = stream_events(s);
    if (stream.empty()) return;
    const auto base = static_cast<std::int64_t>(offset[s]);
    for (auto& ev : stream) {
      if (ev.parent >= 0) ev.parent += base;
      // Child/follow-on jitter can spill past the observation window; the
      // console log simply stops at the end of the study period.
      ev.time = std::min(ev.time, period.end - 1);
      if (ev.job == xid::kNoJob) {
        ev.job = trace.job_at(ev.node, ev.time);
        if (ev.job != xid::kNoJob) ev.user = trace.job(ev.job).user;
      }
      if (ev.card == xid::kInvalidCard) {
        ev.card = fleet.ledger().card_at(ev.node, ev.time);
      }
    }
    auto& ord = order[s];
    ord.resize(stream.size());
    std::iota(ord.begin(), ord.end(), std::uint32_t{0});
    std::stable_sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
      return stream[a].time < stream[b].time;
    });
  });

  // Merge the sorted streams; the (time, stream) tie-break reproduces the
  // global stable sort by (time, provisional index) exactly.
  result.events.reserve(total_events);
  std::vector<std::int64_t> new_index(total_events, -1);
  kway_merge(
      stream_count, [&](std::size_t s) { return order[s].size(); },
      [&](std::size_t s, std::size_t i) { return stream_events(s)[order[s][i]].time; },
      [&](std::size_t s, std::size_t i) {
        const std::uint32_t local = order[s][i];
        new_index[offset[s] + local] = static_cast<std::int64_t>(result.events.size());
        result.events.push_back(stream_events(s)[local]);
      });
  for (auto& ev : result.events) {
    if (ev.parent >= 0) ev.parent = new_index[static_cast<std::size_t>(ev.parent)];
  }

  // SBE strikes: each card's stream is already time-sorted (ops were
  // processed chronologically), so the merged order is (time, card).
  std::size_t sbe_total = 0;
  for (const auto& card_out : per_card) sbe_total += card_out.sbe_strikes.size();
  result.sbe_strikes.reserve(sbe_total);
  kway_merge(
      card_count, [&](std::size_t s) { return per_card[s].sbe_strikes.size(); },
      [&](std::size_t s, std::size_t i) { return per_card[s].sbe_strikes[i].time; },
      [&](std::size_t s, std::size_t i) {
        result.sbe_strikes.push_back(per_card[s].sbe_strikes[i]);
      });

  result.traits = std::move(plan.traits);
  return result;
}

}  // namespace titan::fault
