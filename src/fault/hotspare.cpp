#include "fault/hotspare.hpp"

#include "fault/calibration.hpp"
#include "stats/distributions.hpp"

namespace titan::fault {

StressOutcome stress_test_card(gpu::GpuCard& card, const CardTraits& traits,
                               const StressTestParams& params, stats::TimeSec start,
                               stats::Rng& rng) {
  StressOutcome outcome;
  const double rate_per_day =
      params.base_dbe_per_day * params.acceleration * traits.dbe_weight;
  const double mean = rate_per_day * params.duration_days;
  outcome.observed_dbes = stats::sample_poisson(rng, mean);

  // Commit what the burn-in observed; structure mix as in production.
  for (std::uint64_t i = 0; i < outcome.observed_dbes; ++i) {
    const auto structure = sample_dbe_structure(rng);
    const auto page =
        structure == xid::MemoryStructure::kDeviceMemory
            ? std::optional<std::uint32_t>{static_cast<std::uint32_t>(
                  rng.below(params.device_pages))}
            : std::nullopt;
    const auto when =
        start + static_cast<stats::TimeSec>(rng.below(static_cast<std::uint64_t>(
                    params.duration_days * 86400.0)));
    (void)card.record_dbe(structure, page, when, /*commit_to_inforom=*/true);
  }
  outcome.returned_to_vendor = outcome.observed_dbes >= params.fail_threshold;
  card.set_health(outcome.returned_to_vendor ? gpu::CardHealth::kReturnedToVendor
                                             : gpu::CardHealth::kShelf);
  return outcome;
}

}  // namespace titan::fault
