// Calibration constants for the generative fault model.
//
// Every number here is tied to a statistic the paper reports; the bench
// harness regenerates each figure from a campaign driven by these values
// and EXPERIMENTS.md records paper-vs-measured.  Changing a constant here
// is how ablations shift a figure.
#pragma once

#include "stats/calendar.hpp"

namespace titan::fault {

// ---------------------------------------------------------------------------
// Double-bit errors (Fig. 2, Fig. 3, Observation 1/3)
// ---------------------------------------------------------------------------

/// Paper: "on average, one DBE occurs approximately every seven days
/// (approx. 160 hours)".  We generate at the fleet level with this MTBF.
inline constexpr double kDbeMtbfHours = 160.0;

/// Paper Fig. 3(c): 86% of DBEs in device memory, 14% in the register
/// file, none observed elsewhere.
inline constexpr double kDbeDeviceMemoryShare = 0.86;

/// Thermal sensitivity of DBEs: rate multiplier per +10 F (drives the
/// upper-cage excess in Fig. 3(b); the top cage runs >10 F hotter).
inline constexpr double kDbeThermalFactorPer10F = 1.45;

/// Lognormal sigma of per-card DBE susceptibility (mild heterogeneity:
/// "some GPU cards may inherently be more prone to DBEs").
inline constexpr double kDbeCardSigma = 0.6;

// ---------------------------------------------------------------------------
// Off-the-bus (Fig. 4, Fig. 5, Observation 4)
// ---------------------------------------------------------------------------

/// Fraction of the original card population with the solder defect that
/// caused the 2013 OTB epidemic (resolved by re-soldering in Dec'2013).
inline constexpr double kOtbSolderDefectProbability = 0.009;

/// Probability a defective card's joint fails (one OTB) during the
/// pre-fix era.  OTBs "do not tend to reappear on the same card": a card
/// that fails is re-soldered/replaced, clearing the defect.
inline constexpr double kOtbManifestProbability = 0.70;

/// Thermal sensitivity of OTB (paper: "strong sensitivity towards
/// temperature"; solder fatigue accelerates when hot).
inline constexpr double kOtbThermalFactorPer10F = 1.8;

/// Residual post-fix OTB rate, fleet-wide per day (near-negligible).
inline constexpr double kOtbResidualPerDay = 0.03;

// ---------------------------------------------------------------------------
// Single-bit errors (Figs. 14-20, Observations 10-13)
// ---------------------------------------------------------------------------

/// Paper: "less than 1000 cards have ever experienced a single bit error
/// (less than 5% of the whole system)".
inline constexpr double kSbeProneProbability = 0.045;

/// Background (cosmic/random) SBE rate for prone cards: lognormal over
/// the prone population, per day.  Median ~one SBE per year of exposure.
inline constexpr double kSbeBackgroundMedianPerDay = 0.080;
inline constexpr double kSbeBackgroundSigma = 1.0;

/// Weak-cell cards: the heavy hitters whose removal (top-10/top-50)
/// homogenizes Figs. 14-15.  Probability is conditional on being prone;
/// the expected count (~43) sits below 50 so that the paper's "remove the
/// top 50" sweep captures essentially the whole weak population, leaving
/// the homogeneous background.
inline constexpr double kWeakCardProbabilityGivenProne = 0.05;
inline constexpr double kWeakCellsMin = 1;
inline constexpr double kWeakCellsMax = 3;

/// Weak-cell firing rate: lognormal per day.  The tail makes the top-10
/// offenders dominate the fleet-wide "hundreds per day".
inline constexpr double kWeakCellMedianPerDay = 0.5;
inline constexpr double kWeakCellSigma = 2.0;

/// Fraction of weak cells sitting in device memory (retirable); the rest
/// are in on-chip structures, dominated by L2 (Observation 11: "most of
/// the single bit errors happen in the L2 cache").
inline constexpr double kWeakCellDeviceMemoryShare = 0.25;

/// GPU-activity sensitivity of SBE strikes: a candidate strike survives
/// thinning with probability kSbeIdleAcceptance when the node is idle and
/// kSbeIdleAcceptance + kSbeDutyAcceptance x duty when a job is running.
/// This is what makes per-job SBE counts track GPU core hours more
/// strongly than raw node counts (Fig. 19 vs Fig. 18) -- busy silicon
/// sees more strikes than parked silicon.
inline constexpr double kSbeIdleAcceptance = 0.05;
inline constexpr double kSbeDutyAcceptance = 0.95;

// Background SBE structure mix (probabilities over structures, order:
// L2, device memory, register file, L1/shared, read-only).
inline constexpr double kSbeShareL2 = 0.55;
inline constexpr double kSbeShareDevice = 0.25;
inline constexpr double kSbeShareRegister = 0.10;
inline constexpr double kSbeShareL1 = 0.08;
inline constexpr double kSbeShareReadOnly = 0.02;

// ---------------------------------------------------------------------------
// Page retirement (Figs. 6-8, Observation 5)
// ---------------------------------------------------------------------------

/// Probability that the retirement following a device-memory DBE is
/// actually logged as XID 63 in the console stream.  The paper found 17
/// instances of successive DBEs with *no* retirement logged between them
/// ("not fully understood ... intentional or an issue with the error
/// logging"); this models that loss.
inline constexpr double kRetirementLoggedAfterDbe = 0.35;

/// Delay from DBE to its XID 63 (fast path; Fig. 8: 18 events within
/// 10 minutes).  Uniform over (30 s, `kRetirementFastMaxS`).
inline constexpr double kRetirementFastMaxS = 9.5 * 60.0;

// ---------------------------------------------------------------------------
// nvidia-smi / InfoROM logging pathologies (Observation 2)
// ---------------------------------------------------------------------------

/// Probability a DBE's InfoROM commit is lost because the node shut down
/// first ("nvidia-smi output reports fewer DBEs than our console log").
inline constexpr double kDbeInfoRomLossProbability = 0.30;

// ---------------------------------------------------------------------------
// Software / firmware XIDs (Figs. 9-11, Observation 6)
// ---------------------------------------------------------------------------

/// Fraction of crashing debug jobs whose failure surfaces as XID 13.
inline constexpr double kDebugJobXid13Probability = 0.35;
/// ... as XID 31 (GPU memory page fault).
inline constexpr double kDebugJobXid31Probability = 0.06;

/// Follow-on probabilities (Fig. 13 structure).
inline constexpr double kXid13FollowedBy43 = 0.50;
inline constexpr double kXid43FollowedBy45 = 0.30;
inline constexpr double kDbeFollowedBy45 = 0.60;

/// Max delay for all nodes of a job to report a user-application XID
/// (Observation 7: "the errors appear on all the nodes allocated to the
/// job within five seconds").
inline constexpr double kJobPropagationWindowS = 5.0;

// Sparse driver-error totals over the whole campaign (Fig. 9/11 scale).
inline constexpr double kXid43PerDay = 0.20;   // GPU stopped processing
inline constexpr double kXid44PerDay = 0.14;   // ctx-switch fault
inline constexpr double kXid59PerDayOldDriver = 0.12;  // uC halt, old stack
inline constexpr double kXid62PerDayNewDriver = 0.18;  // uC halt, new stack
inline constexpr int kXid32Total = 8;          // corrupted push buffer (<10)
inline constexpr int kXid38Total = 6;          // driver firmware error (<10)
inline constexpr int kXid42Total = 0;          // never observed
inline constexpr int kXid56Total = 2;
inline constexpr int kXid57Total = 4;
inline constexpr int kXid58Total = 3;
inline constexpr int kXid65Total = 5;

// ---------------------------------------------------------------------------
// Operations (Section 3.1)
// ---------------------------------------------------------------------------

/// DBE threshold at which a card is pulled to the hot-spare cluster.
/// (The RMA decision itself is simulated by fault/hotspare.hpp.)
inline constexpr std::uint64_t kHotSparePullThreshold = 2;

/// Monthly maintenance reboots blacklist queued retired pages fleet-wide.
inline constexpr int kMaintenanceDayOfMonth = 3;

// ---------------------------------------------------------------------------
// The Observation 8 anecdote: one node whose XID 13s were hardware.
// ---------------------------------------------------------------------------
inline constexpr double kBadNodeXid13PerDay = 0.4;
inline constexpr int kBadNodeActiveMonths = 2;  ///< final months of campaign

// ---------------------------------------------------------------------------
// Memory repair granularity (Titan/K20X defaults; profile-overridable).
// Mirrors gpu/k20x.hpp so the fault layer keys on FaultModelParams rather
// than on one chip's header -- src/profile owns the per-fleet values.
// ---------------------------------------------------------------------------

/// Retirable device-memory pages: 6 GB / 64 KiB (== gpu::kDevicePages).
inline constexpr std::uint32_t kDeviceMemoryPages = 98304;

/// InfoROM retirement-table capacity (== gpu::kRetiredPageCapacity).
inline constexpr std::uint64_t kRetiredPageCapacityDefault = 64;

// ---------------------------------------------------------------------------
// Post-Titan fault processes (zero on Titan; A100/H100 profiles set them
// from the PAPERS.md resilience studies).
// ---------------------------------------------------------------------------

/// Fleet-wide NVLink error (XID 74) Poisson rate; K20X has no NVLink.
inline constexpr double kNvLinkPerDay = 0.0;

/// Fleet-wide silent-data-corruption detection rate; Titan's SECDED-era
/// study had no SDC instrumentation.
inline constexpr double kSdcPerDay = 0.0;

}  // namespace titan::fault
