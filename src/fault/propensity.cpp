#include "fault/propensity.hpp"

#include <cmath>

#include "fault/calibration.hpp"
#include "par/parallel.hpp"
#include "stats/distributions.hpp"

namespace titan::fault {

xid::MemoryStructure sample_sbe_structure(stats::Rng& rng) {
  const double u = rng.uniform();
  double acc = kSbeShareL2;
  if (u < acc) return xid::MemoryStructure::kL2Cache;
  acc += kSbeShareDevice;
  if (u < acc) return xid::MemoryStructure::kDeviceMemory;
  acc += kSbeShareRegister;
  if (u < acc) return xid::MemoryStructure::kRegisterFile;
  acc += kSbeShareL1;
  if (u < acc) return xid::MemoryStructure::kL1Shared;
  return xid::MemoryStructure::kReadOnlyCache;
}

xid::MemoryStructure sample_dbe_structure(stats::Rng& rng, double device_share) {
  return rng.bernoulli(device_share) ? xid::MemoryStructure::kDeviceMemory
                                     : xid::MemoryStructure::kRegisterFile;
}

CardTraits sample_one_card(stats::Rng& rng, const FaultModelParams& model) {
  CardTraits traits;
  traits.dbe_weight = stats::sample_lognormal(rng, 0.0, model.dbe_card_sigma);
  traits.solder_defect = rng.bernoulli(model.otb_defect_probability);
  if (rng.bernoulli(model.sbe_prone_probability)) {
    traits.background_sbe_per_day =
        stats::sample_lognormal(rng, std::log(model.sbe_background_median_per_day), model.sbe_background_sigma);
    if (rng.bernoulli(model.weak_card_probability_given_prone)) {
      const auto min_cells = static_cast<std::uint64_t>(model.weak_cells_min);
      const auto max_cells = static_cast<std::uint64_t>(model.weak_cells_max);
      const auto cells =
          static_cast<std::size_t>(min_cells + rng.below(max_cells - min_cells + 1));
      traits.weak_cells.reserve(cells);
      for (std::size_t i = 0; i < cells; ++i) {
        WeakCell cell;
        if (rng.bernoulli(model.weak_cell_device_share)) {
          cell.structure = xid::MemoryStructure::kDeviceMemory;
          cell.page = static_cast<std::uint32_t>(rng.below(model.device_pages));
        } else {
          // On-chip weak cells: dominated by L2 (largest on-chip SECDED
          // structure), occasionally the register file.
          cell.structure = rng.bernoulli(0.85) ? xid::MemoryStructure::kL2Cache
                                               : xid::MemoryStructure::kRegisterFile;
        }
        cell.sbe_per_day =
            stats::sample_lognormal(rng, std::log(model.weak_cell_median_per_day), model.weak_cell_sigma);
        traits.weak_cells.push_back(cell);
      }
    }
  }
  return traits;
}

std::vector<CardTraits> sample_card_traits(std::size_t count, stats::Rng rng,
                                           const FaultModelParams& model) {
  // Each card draws from its own indexed fork, so the sampled fleet is
  // identical at any thread count (and to the old serial loop).
  std::vector<CardTraits> out(count);
  par::parallel_for(0, count, 256, [&](std::size_t serial) {
    auto card_rng = rng.fork("card-traits", serial);
    out[serial] = sample_one_card(card_rng, model);
  });
  return out;
}

}  // namespace titan::fault
