// Hot-spare cluster stress testing (paper Section 3.1).
//
// "Cards which incur double bit errors ... undergo further rigorous
// testing in a hot-spare cluster before being returned to the vendor
// after encountering a threshold number of DBEs.  We have returned the
// GPUs to the vendor after they were stress tested in the hot-spare
// cluster and GPU system failures were encountered."
//
// The stress test runs the pulled card under an accelerated workload
// (burn-in kernels exercising every SECDED-protected structure), which
// multiplies its intrinsic DBE hazard.  A card whose latent
// susceptibility caused its production DBEs is therefore likely to fail
// again here -- while a card that was merely unlucky usually passes and
// goes back to the shelf.  This replaces a coin flip with the actual
// mechanism, so the RMA rate *emerges* from the latent-trait model.
#pragma once

#include <cstdint>

#include "fault/propensity.hpp"
#include "gpu/card.hpp"
#include "stats/rng.hpp"

namespace titan::fault {

struct StressTestParams {
  double duration_days = 14.0;     ///< burn-in length in the spare cluster
  /// Hazard multiplier vs a production node: burn-in kernels plus
  /// worst-case thermal cycling stress the card far beyond field load.
  double acceleration = 4000.0;
  std::uint64_t fail_threshold = 1;  ///< DBEs during burn-in => RMA
  /// Baseline per-card production DBE hazard (events/day) for a card of
  /// unit susceptibility; the default derives from the fleet-level
  /// calibration: one DBE per kDbeMtbfHours across ~18.7k cards.
  double base_dbe_per_day = 24.0 / (160.0 * 18688.0);
  /// Retirable device-memory pages of the card under test.
  std::uint32_t device_pages = kDeviceMemoryPages;
};

struct StressOutcome {
  std::uint64_t observed_dbes = 0;
  bool returned_to_vendor = false;
};

/// Run one card through the burn-in.  Injected DBEs are committed to the
/// card's InfoROM (the spare cluster has no console-log loss: nothing
/// else is running, so every commit completes).
[[nodiscard]] StressOutcome stress_test_card(gpu::GpuCard& card, const CardTraits& traits,
                                             const StressTestParams& params,
                                             stats::TimeSec start, stats::Rng& rng);

}  // namespace titan::fault
