// Latent per-card fault propensities.
//
// The paper's central spatial finding about SBEs (Observation 10) is that
// "some cards are inherently more prone to SBEs rather than due to their
// location": a small set of cards with weak cells dominates the fleet-wide
// counts, and removing the top 10/50 offenders homogenizes the
// distribution.  This module samples those latent traits at fleet
// initialization time, deterministically per card serial.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/model_params.hpp"
#include "stats/rng.hpp"
#include "xid/event.hpp"

namespace titan::fault {

/// A weak memory cell: fires SBEs at its own rate until (for retirable
/// device-memory cells) its page is blacklisted.
struct WeakCell {
  xid::MemoryStructure structure = xid::MemoryStructure::kL2Cache;
  std::uint32_t page = 0;        ///< device-memory page, when retirable
  double sbe_per_day = 0.0;
};

/// Latent traits of one physical card.
struct CardTraits {
  double dbe_weight = 1.0;          ///< relative DBE susceptibility
  bool solder_defect = false;       ///< OTB-prone until the rework era ends
  double background_sbe_per_day = 0.0;  ///< 0 for non-prone cards
  std::vector<WeakCell> weak_cells;

  [[nodiscard]] bool sbe_prone() const noexcept {
    return background_sbe_per_day > 0.0 || !weak_cells.empty();
  }
};

/// Sample traits for `count` cards.  Traits depend only on (rng seed,
/// serial, model) so procurement order cannot perturb them.
[[nodiscard]] std::vector<CardTraits> sample_card_traits(
    std::size_t count, stats::Rng rng, const FaultModelParams& model = FaultModelParams{});

/// Sample traits for one replacement card (same distribution).
[[nodiscard]] CardTraits sample_one_card(stats::Rng& rng,
                                         const FaultModelParams& model = FaultModelParams{});

/// Sample the structure of a background SBE.
[[nodiscard]] xid::MemoryStructure sample_sbe_structure(stats::Rng& rng);

/// Sample the structure of a DBE (calibrated: 86% device memory / 14%
/// register file).
[[nodiscard]] xid::MemoryStructure sample_dbe_structure(
    stats::Rng& rng, double device_share = kDbeDeviceMemoryShare);

}  // namespace titan::fault
