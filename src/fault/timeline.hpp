// Operational timeline of the study period: the dated system changes the
// paper's figures hinge on.
//
//  * Dec'2013 -- the OTB solder-defect rework completes ("a system
//    integration issue ... was identified, and subsequently resolved by
//    soldering"; Fig. 4 collapses after this).
//  * Jan'2014 -- the new driver stack lands: ECC page retirement XIDs
//    63/64 start existing (Fig. 6 "has started appearing only since
//    Jan'2014") and the internal-micro-controller-halt XID switches from
//    59 (old driver) to 62 (new driver) (Fig. 11, Table 2).
#pragma once

#include "stats/calendar.hpp"
#include "xid/taxonomy.hpp"

namespace titan::fault {

struct DriverTimeline {
  /// Completion of the fleet-wide re-soldering rework.
  stats::TimeSec solder_fix = stats::to_time(stats::CivilDate{2013, 12, 1});
  /// Deployment of the new driver stack.
  stats::TimeSec new_driver = stats::to_time(stats::CivilDate{2014, 1, 1});

  [[nodiscard]] constexpr bool retirement_enabled(stats::TimeSec t) const noexcept {
    return t >= new_driver;
  }
  [[nodiscard]] constexpr bool otb_epidemic(stats::TimeSec t) const noexcept {
    return t < solder_fix;
  }
  /// Which micro-controller-halt XID the installed driver raises at `t`.
  [[nodiscard]] constexpr xid::ErrorKind uc_halt_kind(stats::TimeSec t) const noexcept {
    return t < new_driver ? xid::ErrorKind::kUcHaltOldDriver : xid::ErrorKind::kUcHaltNewDriver;
  }
};

}  // namespace titan::fault
