// Runtime-configurable fault-model parameters.
//
// Defaults come from calibration.hpp (the values EXPERIMENTS.md was
// recorded with); overriding fields enables ablation studies -- e.g. how
// the Fig. 3(b) cage ratio responds to the thermal factor, or how the
// Fig. 8 buckets respond to the retirement-logging probability -- without
// recompiling.  Used by propensity sampling and the campaign generator.
#pragma once

#include <cstdint>

#include "fault/calibration.hpp"

namespace titan::fault {

/// How a fleet records a defective device-memory region.  Titan's K20X
/// retires 64 KiB pages into the InfoROM (XID 63/64); A100/H100-era
/// fleets remap individual DRAM rows instead (REMAP/REMAPF events).
enum class MemoryRepairPolicy : std::uint8_t {
  kPageRetirement,
  kRowRemapping,
};

struct FaultModelParams {
  // Double-bit errors.
  double dbe_mtbf_hours = kDbeMtbfHours;
  double dbe_device_share = kDbeDeviceMemoryShare;
  double dbe_thermal_factor = kDbeThermalFactorPer10F;
  double dbe_card_sigma = kDbeCardSigma;

  // Off-the-bus.
  double otb_defect_probability = kOtbSolderDefectProbability;
  double otb_manifest_probability = kOtbManifestProbability;
  double otb_thermal_factor = kOtbThermalFactorPer10F;
  double otb_residual_per_day = kOtbResidualPerDay;

  // Single-bit errors.
  double sbe_prone_probability = kSbeProneProbability;
  double sbe_background_median_per_day = kSbeBackgroundMedianPerDay;
  double sbe_background_sigma = kSbeBackgroundSigma;
  double weak_card_probability_given_prone = kWeakCardProbabilityGivenProne;
  double weak_cell_median_per_day = kWeakCellMedianPerDay;
  double weak_cell_sigma = kWeakCellSigma;
  double weak_cell_device_share = kWeakCellDeviceMemoryShare;
  int weak_cells_min = static_cast<int>(kWeakCellsMin);
  int weak_cells_max = static_cast<int>(kWeakCellsMax);
  double sbe_idle_acceptance = kSbeIdleAcceptance;
  double sbe_duty_acceptance = kSbeDutyAcceptance;

  // Page retirement / logging pathologies.
  double retirement_logged_after_dbe = kRetirementLoggedAfterDbe;
  double retirement_fast_max_s = kRetirementFastMaxS;
  double dbe_inforom_loss_probability = kDbeInfoRomLossProbability;

  // Software / application errors.
  double debug_job_xid13_probability = kDebugJobXid13Probability;
  double debug_job_xid31_probability = kDebugJobXid31Probability;
  double xid13_followed_by_43 = kXid13FollowedBy43;
  double xid43_followed_by_45 = kXid43FollowedBy45;
  double dbe_followed_by_45 = kDbeFollowedBy45;
  double job_propagation_window_s = kJobPropagationWindowS;
  double xid43_per_day = kXid43PerDay;
  double xid44_per_day = kXid44PerDay;
  double xid59_per_day_old_driver = kXid59PerDayOldDriver;
  double xid62_per_day_new_driver = kXid62PerDayNewDriver;
  int xid32_total = kXid32Total;
  int xid38_total = kXid38Total;
  int xid42_total = kXid42Total;
  int xid56_total = kXid56Total;
  int xid57_total = kXid57Total;
  int xid58_total = kXid58Total;
  int xid65_total = kXid65Total;

  // Operations.
  std::uint64_t hot_spare_pull_threshold = kHotSparePullThreshold;
  int maintenance_day_of_month = kMaintenanceDayOfMonth;

  // The Observation 8 anecdote.
  double bad_node_xid13_per_day = kBadNodeXid13PerDay;
  int bad_node_active_months = kBadNodeActiveMonths;

  // Memory repair granularity (profile-owned; K20X defaults).
  MemoryRepairPolicy repair_policy = MemoryRepairPolicy::kPageRetirement;
  std::uint32_t device_pages = kDeviceMemoryPages;
  std::uint64_t retired_page_capacity = kRetiredPageCapacityDefault;

  // Post-Titan fault processes (zero under the Titan model; the A100/H100
  // profiles in src/profile set them from the PAPERS.md studies).
  double nvlink_per_day = kNvLinkPerDay;
  double sdc_per_day = kSdcPerDay;

  // Fleet topology scale hook: fraction of compute-node slots populated
  // with a GPU card.  1.0 reproduces the full-machine Titan campaign;
  // smaller fleets (modern clusters) populate a prefix of the roster.
  double fleet_node_fraction = 1.0;
};

}  // namespace titan::fault
