// Fault-campaign orchestration: turns the latent card traits, the job
// trace and the operational timeline into the ground-truth event streams
// that the logging emitters serialize and the analyses consume.
//
// Responsibilities (each maps to a paper finding):
//  * fleet-level DBE process with per-card susceptibility and cage thermal
//    weighting (Figs. 2-3, Obs. 1/3),
//  * the 2013 Off-the-bus solder epidemic and its Dec'2013 resolution
//    (Figs. 4-5, Obs. 4),
//  * per-card SBE accrual -- background plus weak cells -- fed through the
//    page-retirement engine with reboot-deferred blacklisting
//    (Figs. 6-8 and 14-15, Obs. 5/10/11),
//  * user-application and driver XID generation, with job-wide
//    propagation and follow-on cascades (Figs. 9-13, Obs. 6-9),
//  * the hot-spare card workflow (Sect. 3.1 operations),
//  * InfoROM commit loss on fast node death (Obs. 2).
//
// The campaign is split into three pieces so shard drivers
// (core::ShardedStudy) can generate any contiguous card range in
// isolation with bounded memory:
//
//   plan_fault_campaign   phases A-C: root hardware strikes, the hot-spare
//                         workflow and the reboot calendar, resolved into
//                         an immutable CampaignSchedule (mutates the fleet
//                         roster once, up front);
//   run_card_streams      phase D over [first_card, last_card): per-card
//                         chronological ECC processing.  Cards touch only
//                         their own GpuCard and their own `ecc/card/<n>`
//                         RNG fork, so ranges compose: the union of any
//                         disjoint cover equals the full-fleet run;
//   run_campaign_tail     phase E: OTB, debug-job, driver and bad-node
//                         events (one stream, appended after the cards in
//                         the provisional order).
//
// run_fault_campaign composes all three plus the attribution/merge phase
// (F) and is byte-identical to the pre-split implementation.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "fault/calibration.hpp"
#include "fault/model_params.hpp"
#include "fault/propensity.hpp"
#include "fault/timeline.hpp"
#include "gpu/fleet.hpp"
#include "sched/workload.hpp"
#include "stats/rng.hpp"
#include "topology/thermal.hpp"
#include "xid/event.hpp"

namespace titan::fault {

/// One corrected single-bit error (ground truth; SBEs never reach the
/// console log -- only InfoROM counters and the per-job snapshot
/// framework observe them).
struct SbeStrike {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  xid::CardId card = xid::kInvalidCard;
  xid::MemoryStructure structure = xid::MemoryStructure::kL2Cache;
  std::uint32_t page = 0;       ///< device-memory strikes only
  bool from_weak_cell = false;
};

/// One pass of the hot-spare workflow.
struct HotSpareAction {
  stats::TimeSec pulled_at = 0;
  xid::CardId card = xid::kInvalidCard;
  topology::NodeId node = topology::kInvalidNode;
  bool failed_stress = false;        ///< true -> returned to vendor
  xid::CardId replacement = xid::kInvalidCard;
};

struct CampaignParams {
  stats::StudyPeriod period{};
  DriverTimeline timeline{};
  topology::ThermalModel thermal{};
  FaultModelParams model{};               ///< calibrated rates (ablation knobs)
  bool include_bad_node_anecdote = true;  ///< the Observation 8 node
};

struct CampaignResult {
  std::vector<xid::Event> events;          ///< console-visible, time-sorted
  std::vector<SbeStrike> sbe_strikes;      ///< time-sorted
  std::vector<HotSpareAction> hot_spare_actions;
  std::vector<CardTraits> traits;          ///< by card serial (incl. spares)
  topology::NodeId bad_node = topology::kInvalidNode;  ///< Obs. 8 anecdote
};

/// A card's tenure in a node.
struct Stint {
  topology::NodeId node = topology::kInvalidNode;
  stats::TimeSec from = 0;
  stats::TimeSec to = 0;
};

/// A root hardware strike scheduled in phase A/C, fed through the cards
/// in phase D.
struct HardwareStrike {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  xid::MemoryStructure structure = xid::MemoryStructure::kNone;
  std::uint32_t page = 0;
};

/// The resolved campaign plan (phases A-C).  Immutable once built: phase
/// D reads it per card and phase E reads it once, so any card partition
/// yields the same streams.  The unordered maps are keyed lookups only --
/// never iterated -- so they impose no ordering on the output.
struct CampaignSchedule {
  CampaignParams params{};
  stats::Rng rng{0};  ///< campaign root; phases fork their named streams
  /// Populated compute nodes (ascending) -- the card-bearing roster the
  /// hardware phases draw from.  Equals every compute node at
  /// fleet_node_fraction 1.0; a prefix of the machine otherwise.
  std::vector<topology::NodeId> nodes;
  std::vector<CardTraits> traits;          ///< by serial, incl. spares
  std::vector<std::vector<Stint>> stints;  ///< by serial
  std::vector<HardwareStrike> otb_strikes;               ///< (time, node)-sorted
  std::unordered_map<topology::NodeId, std::vector<HardwareStrike>> dbe_by_node;
  std::unordered_map<topology::NodeId, std::vector<stats::TimeSec>> crash_reboots;
  std::vector<stats::TimeSec> maintenance;  ///< monthly reboot instants
  std::vector<HotSpareAction> hot_spare_actions;

  [[nodiscard]] std::size_t card_count() const noexcept { return traits.size(); }
};

/// Per-card output of phase D.  Event parent links are indices local to
/// `events`; run_fault_campaign rebases them into the global provisional
/// index space during phase F stream assembly.
struct CardStream {
  std::vector<xid::Event> events;
  std::vector<SbeStrike> sbe_strikes;  ///< time-sorted (ops run in time order)
};

/// The phase E output: everything that is not per-card ECC output, in the
/// provisional order OTB -> debug jobs -> driver streams -> bad node.
/// Parent links are local to `events`.
struct TailStream {
  std::vector<xid::Event> events;
  topology::NodeId bad_node = topology::kInvalidNode;
};

/// Populate an empty fleet: procure and install one card per compute node
/// at `when`, sampling latent traits.  Returns the traits by serial.
[[nodiscard]] std::vector<CardTraits> initialize_fleet(
    gpu::Fleet& fleet, stats::TimeSec when, stats::Rng rng,
    const FaultModelParams& model = FaultModelParams{});

/// Phases A-C: schedule DBE root strikes, run the hot-spare workflow
/// (procuring spares and mutating the fleet roster) and schedule OTB
/// strikes plus the reboot calendar.  Deterministic in all inputs.
[[nodiscard]] CampaignSchedule plan_fault_campaign(gpu::Fleet& fleet,
                                                   std::vector<CardTraits> traits,
                                                   const CampaignParams& params,
                                                   stats::Rng rng);

/// Phase D over the card-serial range [first_card, last_card): per-card
/// chronological ECC processing (parallel, one `ecc/card/<serial>` fork
/// per card).  Mutates only the cards in the range; disjoint ranges
/// compose to the full-fleet result regardless of call order.  Pass
/// `collect_sbe = false` to skip materializing the (large) SBE ground
/// truth while still driving the retirement engines identically.
[[nodiscard]] std::vector<CardStream> run_card_streams(const CampaignSchedule& plan,
                                                       gpu::Fleet& fleet,
                                                       const sched::JobTrace& trace,
                                                       std::size_t first_card,
                                                       std::size_t last_card,
                                                       bool collect_sbe = true);

/// Phase E: software / firmware / application XIDs and the OTB event
/// stream.  Reads the fleet ledger (attribution) but mutates nothing.
[[nodiscard]] TailStream run_campaign_tail(const CampaignSchedule& plan,
                                           const gpu::Fleet& fleet,
                                           const sched::JobTrace& trace);

/// Deterministic k-way merge of per-stream time-sorted sequences.
/// `size(s)` and `time(s, i)` describe stream s; `emit(s, i)` receives
/// every element exactly once, ordered by (time, stream index) with
/// within-stream order preserved.  Because the tie-break is structural
/// (stream index, i.e. provisional order), the merge output is identical
/// to a global stable_sort-by-time of the streams' concatenation -- and
/// independent of how many threads produced the streams.  Shard drivers
/// reuse it so the sharded stream equals the unsharded one byte for byte.
template <typename SizeFn, typename TimeFn, typename EmitFn>
void kway_merge(std::size_t stream_count, const SizeFn& size, const TimeFn& time,
                const EmitFn& emit) {
  struct Cursor {
    stats::TimeSec time = 0;
    std::uint32_t stream = 0;
    std::uint32_t pos = 0;
  };
  const auto later = [](const Cursor& a, const Cursor& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.stream > b.stream;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap{later};
  for (std::size_t s = 0; s < stream_count; ++s) {
    if (size(s) > 0) {
      heap.push(Cursor{time(s, 0), static_cast<std::uint32_t>(s), 0});
    }
  }
  while (!heap.empty()) {
    const Cursor top = heap.top();
    heap.pop();
    emit(top.stream, top.pos);
    const std::size_t next = static_cast<std::size_t>(top.pos) + 1;
    if (next < size(top.stream)) {
      heap.push(Cursor{time(top.stream, next), top.stream,
                       static_cast<std::uint32_t>(next)});
    }
  }
}

/// Run the full fault campaign.  `fleet` must have been initialized; its
/// cards' InfoROMs and retirement engines are mutated to their
/// end-of-campaign state.  Deterministic in all inputs.  Equivalent to
/// plan + run_card_streams over all cards + tail + attribution/merge.
[[nodiscard]] CampaignResult run_fault_campaign(gpu::Fleet& fleet,
                                                std::vector<CardTraits> traits,
                                                const sched::JobTrace& trace,
                                                const CampaignParams& params, stats::Rng rng);

}  // namespace titan::fault
