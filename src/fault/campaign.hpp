// Fault-campaign orchestration: turns the latent card traits, the job
// trace and the operational timeline into the ground-truth event streams
// that the logging emitters serialize and the analyses consume.
//
// Responsibilities (each maps to a paper finding):
//  * fleet-level DBE process with per-card susceptibility and cage thermal
//    weighting (Figs. 2-3, Obs. 1/3),
//  * the 2013 Off-the-bus solder epidemic and its Dec'2013 resolution
//    (Figs. 4-5, Obs. 4),
//  * per-card SBE accrual -- background plus weak cells -- fed through the
//    page-retirement engine with reboot-deferred blacklisting
//    (Figs. 6-8 and 14-15, Obs. 5/10/11),
//  * user-application and driver XID generation, with job-wide
//    propagation and follow-on cascades (Figs. 9-13, Obs. 6-9),
//  * the hot-spare card workflow (Sect. 3.1 operations),
//  * InfoROM commit loss on fast node death (Obs. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/calibration.hpp"
#include "fault/model_params.hpp"
#include "fault/propensity.hpp"
#include "fault/timeline.hpp"
#include "gpu/fleet.hpp"
#include "sched/workload.hpp"
#include "stats/rng.hpp"
#include "topology/thermal.hpp"
#include "xid/event.hpp"

namespace titan::fault {

/// One corrected single-bit error (ground truth; SBEs never reach the
/// console log -- only InfoROM counters and the per-job snapshot
/// framework observe them).
struct SbeStrike {
  stats::TimeSec time = 0;
  topology::NodeId node = topology::kInvalidNode;
  xid::CardId card = xid::kInvalidCard;
  xid::MemoryStructure structure = xid::MemoryStructure::kL2Cache;
  std::uint32_t page = 0;       ///< device-memory strikes only
  bool from_weak_cell = false;
};

/// One pass of the hot-spare workflow.
struct HotSpareAction {
  stats::TimeSec pulled_at = 0;
  xid::CardId card = xid::kInvalidCard;
  topology::NodeId node = topology::kInvalidNode;
  bool failed_stress = false;        ///< true -> returned to vendor
  xid::CardId replacement = xid::kInvalidCard;
};

struct CampaignParams {
  stats::StudyPeriod period{};
  DriverTimeline timeline{};
  topology::ThermalModel thermal{};
  FaultModelParams model{};               ///< calibrated rates (ablation knobs)
  bool include_bad_node_anecdote = true;  ///< the Observation 8 node
};

struct CampaignResult {
  std::vector<xid::Event> events;          ///< console-visible, time-sorted
  std::vector<SbeStrike> sbe_strikes;      ///< time-sorted
  std::vector<HotSpareAction> hot_spare_actions;
  std::vector<CardTraits> traits;          ///< by card serial (incl. spares)
  topology::NodeId bad_node = topology::kInvalidNode;  ///< Obs. 8 anecdote
};

/// Populate an empty fleet: procure and install one card per compute node
/// at `when`, sampling latent traits.  Returns the traits by serial.
[[nodiscard]] std::vector<CardTraits> initialize_fleet(
    gpu::Fleet& fleet, stats::TimeSec when, stats::Rng rng,
    const FaultModelParams& model = FaultModelParams{});

/// Run the full fault campaign.  `fleet` must have been initialized; its
/// cards' InfoROMs and retirement engines are mutated to their
/// end-of-campaign state.  Deterministic in all inputs.
[[nodiscard]] CampaignResult run_fault_campaign(gpu::Fleet& fleet,
                                                std::vector<CardTraits> traits,
                                                const sched::JobTrace& trace,
                                                const CampaignParams& params, stats::Rng rng);

}  // namespace titan::fault
