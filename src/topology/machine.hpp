// Physical organization of the Titan supercomputer (paper Fig. 1).
//
// Titan is built from 200 Cray XK7 cabinets arranged on the machine-room
// floor as 25 rows x 8 columns.  Each cabinet holds 3 cages; each cage
// holds 8 blades (slots); each blade holds 4 nodes; each node pairs one
// 16-core AMD Opteron 6274 with one NVIDIA K20X GPU, and every two nodes
// share one Gemini router.  That gives 200 * 3 * 8 * 4 = 19,200 node slots,
// of which 18,688 are GPU compute nodes; the remaining 512 are service/IO
// nodes (128 service blades), which we place deterministically.
//
// Addressing follows Cray cnames: "c{X}-{Y}c{C}s{S}n{N}" where X is the
// cabinet's position along a row (0..24), Y the row (0..7), C the cage
// (0..2, 0 = bottom), S the slot/blade (0..7) and N the node within the
// blade (0..3).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace titan::topology {

inline constexpr int kCabinetGridX = 25;  ///< cabinets per row (paper: "25 rows")
inline constexpr int kCabinetGridY = 8;   ///< number of rows (paper: "8 columns")
inline constexpr int kCabinets = kCabinetGridX * kCabinetGridY;  // 200
inline constexpr int kCagesPerCabinet = 3;
inline constexpr int kBladesPerCage = 8;
inline constexpr int kNodesPerBlade = 4;
inline constexpr int kNodesPerGemini = 2;  ///< two nodes share one Gemini router
inline constexpr int kNodesPerCage = kBladesPerCage * kNodesPerBlade;        // 32
inline constexpr int kNodesPerCabinet = kCagesPerCabinet * kNodesPerCage;    // 96
inline constexpr int kNodeSlots = kCabinets * kNodesPerCabinet;              // 19,200
inline constexpr int kServiceNodes = 512;
inline constexpr int kComputeNodes = kNodeSlots - kServiceNodes;             // 18,688
inline constexpr int kServiceBlades = kServiceNodes / kNodesPerBlade;        // 128

/// Dense node identifier in [0, kNodeSlots).
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Fully decomposed physical location of a node.
struct NodeLocation {
  int cab_x = 0;  ///< cabinet position along its row, 0..24
  int cab_y = 0;  ///< row, 0..7
  int cage = 0;   ///< 0..2, 0 = bottom cage (coolest), 2 = top cage (hottest)
  int slot = 0;   ///< blade within the cage, 0..7
  int node = 0;   ///< node within the blade, 0..3

  friend constexpr auto operator<=>(const NodeLocation&, const NodeLocation&) = default;

  [[nodiscard]] constexpr int cabinet_index() const noexcept {
    return cab_y * kCabinetGridX + cab_x;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return cab_x >= 0 && cab_x < kCabinetGridX && cab_y >= 0 && cab_y < kCabinetGridY &&
           cage >= 0 && cage < kCagesPerCabinet && slot >= 0 && slot < kBladesPerCage &&
           node >= 0 && node < kNodesPerBlade;
  }
};

/// NodeId -> physical location (total, bijective over valid ids).
[[nodiscard]] constexpr NodeLocation locate(NodeId id) noexcept {
  NodeLocation loc;
  int rest = id;
  loc.node = rest % kNodesPerBlade;
  rest /= kNodesPerBlade;
  loc.slot = rest % kBladesPerCage;
  rest /= kBladesPerCage;
  loc.cage = rest % kCagesPerCabinet;
  rest /= kCagesPerCabinet;
  loc.cab_x = rest % kCabinetGridX;
  loc.cab_y = rest / kCabinetGridX;
  return loc;
}

/// Physical location -> NodeId (inverse of locate()).
[[nodiscard]] constexpr NodeId node_id(const NodeLocation& loc) noexcept {
  return static_cast<NodeId>(
      (((loc.cab_y * kCabinetGridX + loc.cab_x) * kCagesPerCabinet + loc.cage) * kBladesPerCage +
       loc.slot) *
          kNodesPerBlade +
      loc.node);
}

/// Index of the Gemini router serving a node.  Nodes 0,1 of a blade share
/// one router; nodes 2,3 share the other.
[[nodiscard]] constexpr int gemini_index(NodeId id) noexcept { return id / kNodesPerGemini; }

/// True if the node slot hosts a service/IO node (no GPU).
///
/// Model: Titan dedicates 128 blades to service nodes.  We assign slot 0 of
/// cage 0 in cabinets with even cabinet_index to service duty (100 blades),
/// plus slot 4 of cage 0 in cabinets whose index is a nonzero multiple of 7
/// (28 blades) -> exactly 128 service blades / 512 nodes.
/// The precise placement is a modeling choice (real Titan interleaves
/// service blades through the torus); what matters for the analyses is that
/// service nodes are spread across the machine and carry no GPU.
[[nodiscard]] constexpr bool is_service_node(NodeId id) noexcept {
  const NodeLocation loc = locate(id);
  if (loc.cage != 0) return false;
  const int cab = loc.cabinet_index();
  if (loc.slot == 0 && cab % 2 == 0) return true;
  if (loc.slot == 4 && cab % 7 == 0 && cab != 0) return true;
  return false;
}

/// Number of GPU compute nodes (counts non-service slots; equals
/// kComputeNodes by construction, verified in tests).
[[nodiscard]] int compute_node_count() noexcept;

/// Format a Cray cname, e.g. "c12-3c1s4n2".
[[nodiscard]] std::string cname(NodeId id);
[[nodiscard]] std::string cname(const NodeLocation& loc);
/// Same format, appended to `out` (no temporary string).
void append_cname(std::string& out, const NodeLocation& loc);

/// Parse a Cray cname.  Returns std::nullopt on malformed input or
/// out-of-range coordinates.
[[nodiscard]] std::optional<NodeLocation> parse_cname(std::string_view text);

}  // namespace titan::topology
