#include "topology/machine.hpp"

#include <cstdio>

namespace titan::topology {

namespace {

// Parse a decimal integer starting at `pos`; requires at least one digit.
bool parse_int(std::string_view text, std::size_t& pos, int& out) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return false;
  int value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + (text[pos] - '0');
    if (value > 1'000'000) return false;  // reject absurd coordinates early
    ++pos;
  }
  out = value;
  return true;
}

bool expect(std::string_view text, std::size_t& pos, char c) {
  if (pos >= text.size() || text[pos] != c) return false;
  ++pos;
  return true;
}

}  // namespace

int compute_node_count() noexcept {
  int count = 0;
  for (NodeId id = 0; id < kNodeSlots; ++id) {
    if (!is_service_node(id)) ++count;
  }
  return count;
}

void append_cname(std::string& out, const NodeLocation& loc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%d-%dc%ds%dn%d", loc.cab_x, loc.cab_y, loc.cage, loc.slot,
                loc.node);
  out += buf;
}

std::string cname(const NodeLocation& loc) {
  std::string out;
  append_cname(out, loc);
  return out;
}

std::string cname(NodeId id) { return cname(locate(id)); }

std::optional<NodeLocation> parse_cname(std::string_view text) {
  NodeLocation loc;
  std::size_t pos = 0;
  if (!expect(text, pos, 'c')) return std::nullopt;
  if (!parse_int(text, pos, loc.cab_x)) return std::nullopt;
  if (!expect(text, pos, '-')) return std::nullopt;
  if (!parse_int(text, pos, loc.cab_y)) return std::nullopt;
  if (!expect(text, pos, 'c')) return std::nullopt;
  if (!parse_int(text, pos, loc.cage)) return std::nullopt;
  if (!expect(text, pos, 's')) return std::nullopt;
  if (!parse_int(text, pos, loc.slot)) return std::nullopt;
  if (!expect(text, pos, 'n')) return std::nullopt;
  if (!parse_int(text, pos, loc.node)) return std::nullopt;
  if (pos != text.size()) return std::nullopt;
  if (!loc.valid()) return std::nullopt;
  return loc;
}

}  // namespace titan::topology
