// Gemini 3-D torus geometry and the folded-torus cabling order.
//
// Titan's Gemini interconnect is a 25 x 16 x 24 3-D torus of routers
// (9,600 Geminis, two nodes each):
//   X = cabinet position along a row          (0..24)
//   Y = 2 * row + gemini-within-blade         (0..15)
//   Z = cage * 8 + slot                       (0..23)
//
// The X dimension is *folded* (paper Section 3.2, citing Ezell [8]): to
// keep inter-cabinet cable lengths uniform, the torus ring visits physical
// cabinets in the order 0, 2, 4, ..., 24, 23, 21, ..., 1 rather than
// 0, 1, 2, ....  Consecutive torus-X coordinates therefore land in
// *alternating* physical cabinets, which is exactly what produces the
// alternating-cabinet density pattern of Fig. 12 when a large job is
// allocated a contiguous span of the torus.
#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "topology/machine.hpp"

namespace titan::topology {

inline constexpr int kTorusX = kCabinetGridX;                    // 25
inline constexpr int kTorusY = kCabinetGridY * 2;                // 16
inline constexpr int kTorusZ = kCagesPerCabinet * kBladesPerCage;  // 24
inline constexpr int kGeminiCount = kTorusX * kTorusY * kTorusZ;   // 9,600

static_assert(kGeminiCount == kNodeSlots / kNodesPerGemini);

/// Router coordinate in the 3-D torus.
struct TorusCoord {
  int x = 0;  ///< 0..24
  int y = 0;  ///< 0..15
  int z = 0;  ///< 0..23

  friend constexpr auto operator<=>(const TorusCoord&, const TorusCoord&) = default;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return x >= 0 && x < kTorusX && y >= 0 && y < kTorusY && z >= 0 && z < kTorusZ;
  }
};

/// Folded cabling: torus-X position -> physical cabinet x.
/// Sequence: 0, 2, 4, ..., 24, 23, 21, ..., 1.
[[nodiscard]] constexpr int folded_x_to_physical(int torus_x) noexcept {
  return torus_x <= kTorusX / 2 ? 2 * torus_x : 2 * (kTorusX - torus_x) - 1;
}

/// Inverse of folded_x_to_physical.
[[nodiscard]] constexpr int physical_x_to_folded(int phys_x) noexcept {
  return phys_x % 2 == 0 ? phys_x / 2 : kTorusX - (phys_x + 1) / 2;
}

/// Torus coordinate of the Gemini router serving a node.
[[nodiscard]] constexpr TorusCoord torus_coord(NodeId id) noexcept {
  const NodeLocation loc = locate(id);
  TorusCoord c;
  c.x = physical_x_to_folded(loc.cab_x);
  c.y = loc.cab_y * 2 + loc.node / kNodesPerGemini;  // two Geminis per blade
  c.z = loc.cage * kBladesPerCage + loc.slot;
  return c;
}

/// Linear "allocation rank" that walks the torus Z-major within a Y column
/// within an X ring: consecutive ranks are torus-adjacent, so allocating a
/// contiguous rank span gives a compact torus block.  Each Gemini rank
/// covers its two nodes, keeping job placements router-aligned.
[[nodiscard]] constexpr int torus_rank(const TorusCoord& c) noexcept {
  return (c.x * kTorusY + c.y) * kTorusZ + c.z;
}

[[nodiscard]] constexpr TorusCoord coord_from_rank(int rank) noexcept {
  TorusCoord c;
  c.z = rank % kTorusZ;
  rank /= kTorusZ;
  c.y = rank % kTorusY;
  c.x = rank / kTorusY;
  return c;
}

/// The two NodeIds served by the Gemini at `c` (lower id first).
[[nodiscard]] constexpr std::array<NodeId, 2> gemini_nodes(const TorusCoord& c) noexcept {
  NodeLocation loc;
  loc.cab_x = folded_x_to_physical(c.x);
  loc.cab_y = c.y / 2;
  loc.cage = c.z / kBladesPerCage;
  loc.slot = c.z % kBladesPerCage;
  loc.node = (c.y % 2) * kNodesPerGemini;
  const NodeId first = node_id(loc);
  return {first, static_cast<NodeId>(first + 1)};
}

/// Hop distance between two routers on the torus (shortest path per
/// dimension with wraparound) -- used by placement-quality metrics.
[[nodiscard]] constexpr int torus_hops(const TorusCoord& a, const TorusCoord& b) noexcept {
  const auto dim = [](int u, int v, int size) {
    int d = u - v;
    if (d < 0) d = -d;
    return d < size - d ? d : size - d;
  };
  return dim(a.x, b.x, kTorusX) + dim(a.y, b.y, kTorusY) + dim(a.z, b.z, kTorusZ);
}

}  // namespace titan::topology
