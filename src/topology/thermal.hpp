// Cabinet thermal model.
//
// The paper reports (Sections 3.1, 3.2) that "GPUs in the uppermost cage
// are on average more than 10 degrees F hotter than the GPUs in the
// lowermost cage" due to Titan's bottom-to-top airflow, and ties this
// gradient to the cage-position sensitivity of DBE and Off-the-bus errors
// (Observations 1, 4).  This model captures exactly that: a per-cage base
// temperature plus small deterministic per-slot variation and stochastic
// jitter supplied by the caller.
#pragma once

#include <cmath>

#include "topology/machine.hpp"

namespace titan::topology {

struct ThermalModel {
  double inlet_f = 65.0;          ///< machine-room supply air temperature (F)
  double gpu_rise_f = 20.0;       ///< GPU die rise over inlet at the bottom cage
  double per_cage_rise_f = 5.5;   ///< added rise per cage going up (>10 F cage0->cage2)
  double slot_spread_f = 1.5;     ///< deterministic spread across blades in a cage

  /// Nominal steady-state GPU temperature (F) for a node location.
  [[nodiscard]] constexpr double nominal_gpu_temp_f(const NodeLocation& loc) const noexcept {
    const double cage_term = per_cage_rise_f * static_cast<double>(loc.cage);
    // Blades toward the middle of a cage run slightly warmer.
    const double mid = (kBladesPerCage - 1) / 2.0;
    const double slot_dev = 1.0 - (loc.slot > mid ? loc.slot - mid : mid - loc.slot) / mid;
    return inlet_f + gpu_rise_f + cage_term + slot_spread_f * slot_dev;
  }

  /// Temperature difference (F) between the top and bottom cage.
  [[nodiscard]] constexpr double top_to_bottom_delta_f() const noexcept {
    return per_cage_rise_f * static_cast<double>(kCagesPerCabinet - 1);
  }
};

/// Multiplicative fault-rate modifier for temperature-sensitive error
/// families: rate scales by `factor_per_10f` for every 10 F over the
/// bottom-cage temperature.  An Arrhenius-flavored but deliberately simple
/// model; what the reproduced figures need is a monotone cage ordering.
[[nodiscard]] inline double thermal_rate_multiplier(const ThermalModel& model,
                                                    const NodeLocation& loc,
                                                    double factor_per_10f) noexcept {
  NodeLocation bottom = loc;
  bottom.cage = 0;
  const double delta = model.nominal_gpu_temp_f(loc) - model.nominal_gpu_temp_f(bottom);
  return std::pow(factor_per_10f, delta / 10.0);
}

}  // namespace titan::topology
