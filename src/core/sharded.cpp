#include "core/sharded.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "par/parallel.hpp"
#include "sched/users.hpp"
#include "stats/rng.hpp"

namespace titan::core {

namespace {

/// Streams per parallel task in the clamp/sort pass (mirrors the
/// campaign's per-card grain; the value affects scheduling only).
constexpr std::size_t kStreamGrain = 64;

/// Identical stream derivation to run_study: same master forks, same
/// order, so the plan (and with it every event) matches the unsharded
/// path exactly.
[[nodiscard]] sched::WorkloadResult make_workload(const FacilityConfig& config) {
  const stats::Rng master{config.seed};
  const auto users = sched::make_user_population(config.users, master.fork("users"));
  return sched::simulate_workload(config.workload, users, master.fork("workload"));
}

}  // namespace

ShardedStudy::ShardedStudy(const FacilityConfig& config, std::size_t shard_count)
    : config_{config}, workload_{make_workload(config)} {
  if (shard_count == 0) {
    throw std::invalid_argument{"ShardedStudy: shard_count must be positive"};
  }
  const stats::Rng master{config.seed};
  auto traits = fault::initialize_fleet(fleet_, config.period.begin, master.fork("fleet"),
                                        config.campaign.model);
  plan_ = fault::plan_fault_campaign(fleet_, std::move(traits), config.campaign,
                                     master.fork("faults"));

  const std::size_t cards = plan_.card_count();
  bounds_.resize(shard_count + 1);
  for (std::size_t s = 0; s <= shard_count; ++s) {
    bounds_[s] = cards * s / shard_count;
  }
}

ShardEventColumns ShardedStudy::shard_events(std::size_t shard) {
  if (shard >= shard_count()) {
    throw std::invalid_argument{"ShardedStudy: shard index out of range"};
  }
  if (shard != next_shard_) {
    throw std::logic_error{"ShardedStudy: shards must be generated once each, in order"};
  }
  ++next_shard_;

  const auto [lo, hi] = shard_card_range(shard);
  std::vector<fault::CardStream> streams =
      fault::run_card_streams(plan_, fleet_, workload_.trace, lo, hi, /*collect_sbe=*/false);
  std::optional<fault::TailStream> tail;
  if (shard + 1 == shard_count()) {
    tail = fault::run_campaign_tail(plan_, fleet_, workload_.trace);
  }

  const std::size_t stream_count = streams.size() + (tail ? 1 : 0);
  const auto stream_events = [&](std::size_t s) -> std::vector<xid::Event>& {
    return s < streams.size() ? streams[s].events : tail->events;
  };

  // The same clamp + per-stream stable time sort phase F applies before
  // its merge (attribution and parent rebasing are simulator-side fields
  // that the serialized columns never carry).
  const stats::TimeSec end_clamp = plan_.params.period.end - 1;
  std::vector<std::vector<std::uint32_t>> order(stream_count);
  par::parallel_for(0, stream_count, kStreamGrain, [&](std::size_t s) {
    auto& stream = stream_events(s);
    if (stream.empty()) return;
    for (auto& ev : stream) ev.time = std::min(ev.time, end_clamp);
    auto& ord = order[s];
    ord.resize(stream.size());
    std::iota(ord.begin(), ord.end(), std::uint32_t{0});
    std::stable_sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
      return stream[a].time < stream[b].time;
    });
  });

  std::size_t total = 0;
  for (std::size_t s = 0; s < stream_count; ++s) total += stream_events(s).size();

  ShardEventColumns out;
  out.times.reserve(total);
  out.nodes.reserve(total);
  out.kinds.reserve(total);
  out.structures.reserve(total);
  fault::kway_merge(
      stream_count, [&](std::size_t s) { return order[s].size(); },
      [&](std::size_t s, std::size_t i) { return stream_events(s)[order[s][i]].time; },
      [&](std::size_t s, std::size_t i) {
        const auto& ev = stream_events(s)[order[s][i]];
        // Console-recoverable view: SBEs never reach the log (the same
        // downgrade analysis::as_parsed applies on the unsharded path).
        if (ev.kind == xid::ErrorKind::kSingleBitError) return;
        out.times.push_back(ev.time);
        out.nodes.push_back(ev.node);
        out.kinds.push_back(ev.kind);
        out.structures.push_back(ev.structure);
      });
  return out;
}

logsim::SmiSnapshot ShardedStudy::final_snapshot() const {
  if (!complete()) {
    throw std::logic_error{
        "ShardedStudy: final_snapshot requires every shard to have been generated"};
  }
  return logsim::take_snapshot(fleet_, config_.period.end - 1, config_.campaign.thermal);
}

double ShardedStudy::node_hours() const noexcept {
  return static_cast<double>(topology::kComputeNodes) *
         static_cast<double>(config_.period.duration()) / 3600.0;
}

}  // namespace titan::core
