// Sharded, memory-bounded study driver.
//
// run_study materializes every event, SBE strike and console line of the
// campaign at once -- fine for one Titan, hopeless for the 10-50x fleets
// the ROADMAP targets.  ShardedStudy partitions the campaign by card
// range into S independent shards and generates them one at a time:
//
//   * phases A-C (planning) run once, up front -- the plan plus the job
//     trace is the resident floor;
//   * phase D runs per shard over [bounds[k], bounds[k+1]) card serials,
//     so at most one shard's events are in memory at a time;
//   * phase E (the tail stream) rides with the LAST shard, because the
//     provisional index space is [card 0 .. N-1, tail] and the tail must
//     sort after every card at equal timestamps;
//   * the end-of-study nvidia-smi snapshot is taken only after every
//     shard ran (phase D mutates each card's InfoROM).
//
// Determinism: every per-card stream draws from its own named RNG fork
// (`ecc/card/<serial>`), so the partition cannot perturb any stream.
// Within a shard, streams merge by (time, local stream index); across
// shards, readers merge by (time, shard index).  Because shard k holds
// strictly lower provisional indices than shard k+1, the composition
// equals the unsharded global stable sort by (time, provisional index) --
// byte-identical at any shard count and thread width.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/facility.hpp"
#include "fault/campaign.hpp"
#include "logsim/smi.hpp"

namespace titan::core {

/// One shard's event stream as parallel columns -- the exact
/// representation tdf serializes (times ascending; equal-timestamp order
/// is the provisional card order).
struct ShardEventColumns {
  std::vector<stats::TimeSec> times;
  std::vector<topology::NodeId> nodes;
  std::vector<xid::ErrorKind> kinds;
  std::vector<xid::MemoryStructure> structures;

  [[nodiscard]] std::size_t size() const noexcept { return times.size(); }
};

class ShardedStudy {
 public:
  /// Plans the campaign (workload, fleet roster, phases A-C).  Peak RSS
  /// from here on is the plan + trace + one shard's events.
  ShardedStudy(const FacilityConfig& config, std::size_t shard_count);

  [[nodiscard]] std::size_t shard_count() const noexcept { return bounds_.size() - 1; }
  [[nodiscard]] std::size_t card_count() const noexcept { return plan_.card_count(); }
  [[nodiscard]] const FacilityConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sched::JobTrace& trace() const noexcept { return workload_.trace; }

  /// Card-serial range [first, last) owned by `shard`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_card_range(
      std::size_t shard) const {
    return {bounds_[shard], bounds_[shard + 1]};
  }

  /// Generate shard `shard`'s time-ordered event columns.  Shards must be
  /// generated exactly once each, in ascending order (the contract that
  /// keeps "every card mutated before the snapshot" trivially true).
  [[nodiscard]] ShardEventColumns shard_events(std::size_t shard);

  /// True once every shard was generated.
  [[nodiscard]] bool complete() const noexcept { return next_shard_ == shard_count(); }

  /// End-of-study fleet-wide nvidia-smi snapshot.  Requires complete().
  [[nodiscard]] logsim::SmiSnapshot final_snapshot() const;

  /// Compute-node-hours the campaign simulates (the bench headline unit).
  [[nodiscard]] double node_hours() const noexcept;

 private:
  FacilityConfig config_;
  sched::WorkloadResult workload_;
  gpu::Fleet fleet_;
  fault::CampaignSchedule plan_;
  std::vector<std::size_t> bounds_;  ///< shard_count()+1 card-serial fences
  std::size_t next_shard_ = 0;
};

}  // namespace titan::core
