// The facility simulation: wires topology, fleet, workload, fault
// processes and logging into one reproducible study campaign, and bundles
// everything the paper's analyses consume into a StudyDataset.
//
// One `run_study` call is the synthetic equivalent of "operate Titan from
// Jun'2013 to Feb'2015 and collect the console logs, nvidia-smi snapshots
// and job logs".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "gpu/fleet.hpp"
#include "logsim/smi.hpp"
#include "profile/fleet_profile.hpp"
#include "sched/users.hpp"
#include "sched/workload.hpp"
#include "stats/calendar.hpp"

namespace titan::core {

struct FacilityConfig {
  /// Master seed: every stochastic stream in the study forks from it.
  std::uint64_t seed = 20151115;  // SC'15 in Austin: Nov 15, 2015

  stats::StudyPeriod period{};
  sched::UserPopulationParams users{};
  sched::WorkloadParams workload{};
  fault::CampaignParams campaign{};

  /// Fleet profile the campaign and renderers run under.  Never null;
  /// points at a process-lifetime singleton (see src/profile).  Use
  /// apply_profile to switch: it also copies the profile's fault
  /// calibration into campaign.model.
  const profile::FleetProfile* profile = &profile::k20x_titan();

  /// Take the end-of-study fleet-wide nvidia-smi snapshot (Figs. 14/15).
  bool take_final_snapshot = true;
};

/// Point `config` at `profile` and adopt its fault calibration (overwrites
/// any campaign.model ablation overrides, so apply the profile first).
void apply_profile(FacilityConfig& config, const profile::FleetProfile& profile);

/// The canonical full-study configuration used by every figure bench.
[[nodiscard]] FacilityConfig default_config(std::uint64_t seed = 20151115);
[[nodiscard]] FacilityConfig default_config(std::uint64_t seed,
                                            const profile::FleetProfile& profile);

/// A reduced configuration (3 months) for tests and examples that need a
/// fast end-to-end run.
[[nodiscard]] FacilityConfig quick_config(std::uint64_t seed = 7);
[[nodiscard]] FacilityConfig quick_config(std::uint64_t seed,
                                          const profile::FleetProfile& profile);

/// Everything one study run produces.
struct StudyDataset {
  FacilityConfig config;
  sched::JobTrace trace;
  sched::DeadlineCalendar deadlines;
  double workload_utilization = 0.0;

  gpu::Fleet fleet;                          ///< end-of-study card state
  std::vector<fault::CardTraits> traits;     ///< ground-truth latents
  std::vector<xid::Event> events;            ///< ground truth, time-sorted
  std::vector<fault::SbeStrike> sbe_strikes; ///< time-sorted
  std::vector<fault::HotSpareAction> hot_spare_actions;
  topology::NodeId bad_node = topology::kInvalidNode;

  std::vector<std::string> console_log;      ///< what the SMW recorded
  logsim::SmiSnapshot final_snapshot;        ///< end-of-study smi sweep
};

/// Run the full simulation pipeline.  Deterministic in `config`.
[[nodiscard]] StudyDataset run_study(const FacilityConfig& config);

}  // namespace titan::core
