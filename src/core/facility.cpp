#include "core/facility.hpp"

#include "logsim/console.hpp"
#include "stats/rng.hpp"

namespace titan::core {

void apply_profile(FacilityConfig& config, const profile::FleetProfile& profile) {
  config.profile = &profile;
  config.campaign.model = profile.fault;
}

FacilityConfig default_config(std::uint64_t seed) {
  FacilityConfig config;
  config.seed = seed;
  config.workload.period = config.period;
  config.campaign.period = config.period;
  return config;
}

FacilityConfig default_config(std::uint64_t seed, const profile::FleetProfile& profile) {
  FacilityConfig config = default_config(seed);
  apply_profile(config, profile);
  return config;
}

FacilityConfig quick_config(std::uint64_t seed) {
  FacilityConfig config;
  config.seed = seed;
  // Three months straddling the two operational eras (solder rework and
  // the new-driver deployment) so short runs still exercise both paths.
  config.period.begin = stats::to_time(stats::CivilDate{2013, 11, 1});
  config.period.end = stats::to_time(stats::CivilDate{2014, 2, 1});
  config.workload.period = config.period;
  config.campaign.period = config.period;
  return config;
}

FacilityConfig quick_config(std::uint64_t seed, const profile::FleetProfile& profile) {
  FacilityConfig config = quick_config(seed);
  apply_profile(config, profile);
  return config;
}

StudyDataset run_study(const FacilityConfig& config) {
  const stats::Rng master{config.seed};

  // 1. Workload: user population -> 21 months of batch jobs on the torus.
  const auto users = sched::make_user_population(config.users, master.fork("users"));
  auto workload = sched::simulate_workload(config.workload, users, master.fork("workload"));

  // 2. Fleet: procure + install a card per compute node, sample latents.
  gpu::Fleet fleet;
  auto traits = fault::initialize_fleet(fleet, config.period.begin, master.fork("fleet"),
                                        config.campaign.model);

  // 3. Faults: the full error campaign over the job trace.
  auto campaign = fault::run_fault_campaign(fleet, std::move(traits), workload.trace,
                                            config.campaign, master.fork("faults"));

  // 4. Logging: serialize what the SMW and nvidia-smi actually see.
  StudyDataset dataset{config,
                       std::move(workload.trace),
                       std::move(workload.deadlines),
                       workload.utilization(),
                       std::move(fleet),
                       std::move(campaign.traits),
                       std::move(campaign.events),
                       std::move(campaign.sbe_strikes),
                       std::move(campaign.hot_spare_actions),
                       campaign.bad_node,
                       {},
                       {}};
  dataset.console_log = logsim::emit_console_log(dataset.events, *config.profile);
  if (config.take_final_snapshot) {
    dataset.final_snapshot = logsim::take_snapshot(dataset.fleet, config.period.end - 1,
                                                   config.campaign.thermal);
  }
  return dataset;
}

}  // namespace titan::core
